//! Scenario harness for the **cross-shard gateway** (stitched journeys
//! over a `ShardedService` whose shards share border stations).
//!
//! The randomized half drives the conncheck battery as a property: for
//! generated region scenarios of varying shape, every sampled cross-shard
//! pair's stitched profile must equal — byte for byte — the profile the
//! merged monolithic network computes, on the scenario as generated,
//! after a deterministic delay burst, and across live mixed feeds applied
//! through the service (reduced profiles are canonical per arrival
//! function, so equality is exact, not approximate).
//!
//! The deterministic half pins the **invalidation scope** of the border
//! tables: a feed that touches only a sub-line unreachable from the
//! border refreshes *zero* border rows (the table's validity window is
//! extended in place), a feed touching the border's reachable component
//! refreshes exactly that shard's row, and a feed to one shard never
//! refreshes another shard's rows.

use proptest::prelude::*;

use best_connections::prelude::*;
use pt_bench::conncheck::{disrupt_scenario, gateway_check, gateway_scenario};

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    // Stitched ≡ monolithic over random region scenarios: pristine, after
    // a delay burst, and re-checked after every live mixed feed round
    // (the feed rounds exercise the scoped border-set refresh).
    #[test]
    fn stitched_cross_shard_profiles_equal_the_monolith(
        shards in 2usize..=3,
        borders in 1usize..=2,
        locals in 1usize..=4,
        trips in 4usize..=10,
        seed in 0u64..1 << 48,
        feeds in 0usize..=2,
    ) {
        let sc = gateway_scenario(shards, borders, locals, trips, seed);
        let live = gateway_check("prop", &sc, 2, feeds, 5, seed);
        prop_assert!(live.mismatches.is_empty(), "{:?}", live.mismatches);

        let burst = disrupt_scenario(&sc, 4, seed);
        let delayed = gateway_check("prop+delays", &burst, 2, 0, 0, seed);
        prop_assert!(delayed.mismatches.is_empty(), "{:?}", delayed.mismatches);
    }
}

/// Two regions meeting at border `b0`. The west shard carries, besides
/// the border line `b0 ⇄ x`, an **isolated** sub-line `y → z` with no
/// path to or from the border's component; the east shard is a plain
/// border line `b0 → c`. Train ids, in order of insertion:
/// west 0 = `b0→x`, west 1 = `x→b0`, west 2 = `y→z`; east 0 = `b0→c`.
fn border_with_isolated_subline() -> ShardedService {
    let mut west = TimetableBuilder::new(Period::DAY);
    let b = west.add_named_station("b0", Dur::minutes(3));
    let x = west.add_named_station("w_x", Dur::minutes(2));
    let y = west.add_named_station("w_y", Dur::minutes(2));
    let z = west.add_named_station("w_z", Dur::minutes(2));
    west.add_simple_trip(&[b, x], Time::hm(8, 0), &[Dur::minutes(20)], Dur::ZERO).unwrap();
    west.add_simple_trip(&[x, b], Time::hm(8, 30), &[Dur::minutes(20)], Dur::ZERO).unwrap();
    west.add_simple_trip(&[y, z], Time::hm(9, 0), &[Dur::minutes(15)], Dur::ZERO).unwrap();

    let mut east = TimetableBuilder::new(Period::DAY);
    let b = east.add_named_station("b0", Dur::minutes(3));
    let c = east.add_named_station("e_c", Dur::minutes(2));
    east.add_simple_trip(&[b, c], Time::hm(8, 40), &[Dur::minutes(15)], Dur::ZERO).unwrap();
    east.add_simple_trip(&[b, c], Time::hm(9, 40), &[Dur::minutes(15)], Dur::ZERO).unwrap();

    ShardedService::builder()
        .gateway(BorderSpec::ByName)
        .build(vec![Network::new(west.build().unwrap()), Network::new(east.build().unwrap())])
}

/// A real 10-minute delay for `train` (bumps the shard's generation).
fn delay(train: u32) -> DelayEvent {
    DelayEvent::Delay {
        train: TrainId(train),
        from_hop: 0,
        delay: Dur::minutes(10),
        recovery: Recovery::None,
    }
}

/// The cumulative per-shard border rows refreshed, after forcing any
/// pending refresh by answering a cross-shard pair.
fn rows_after_query(svc: &ShardedService) -> Vec<u64> {
    let x = svc.global_id(ShardId(0), StationId(1)).unwrap();
    let c = svc.global_id(ShardId(1), StationId(1)).unwrap();
    let r = svc.s2s(x, c).expect("gateway answers cross-shard pairs");
    assert_eq!(r.shard, ShardId(1), "stitched results are attributed to the target's shard");
    svc.gateway_stats().expect("gateway enabled").rows_refreshed
}

#[test]
fn border_unreachable_feeds_refresh_zero_rows() {
    let svc = border_with_isolated_subline();
    assert_eq!(rows_after_query(&svc), vec![0, 0], "pristine tables need no refresh");

    // Delay the isolated `y→z` train: the west generation moves, but no
    // station of the border's component reaches the touched set, so the
    // scoped refresh rewrites zero rows — it only extends the table's
    // validity window to the new generation.
    svc.apply_feed(&[(ShardId(0), delay(2))]).unwrap();
    assert_eq!(rows_after_query(&svc), vec![0, 0], "isolated sub-line must not invalidate");
}

#[test]
fn border_reachable_feeds_refresh_exactly_the_touched_shards_row() {
    let svc = border_with_isolated_subline();
    let _ = rows_after_query(&svc);

    // Delay `b0→x`: the touched set is in the border's component, so the
    // west border row is recomputed — and only it (the east shard saw no
    // events, its generation did not move).
    svc.apply_feed(&[(ShardId(0), delay(0))]).unwrap();
    assert_eq!(rows_after_query(&svc), vec![1, 0], "west row refreshes, east stays");

    // A later feed to the east shard refreshes the east row and leaves
    // the (already-fresh) west row alone: the counters are per shard and
    // cumulative.
    svc.apply_feed(&[(ShardId(1), delay(0))]).unwrap();
    assert_eq!(rows_after_query(&svc), vec![1, 1], "east row refreshes, west already fresh");
}

#[test]
fn the_isolated_subline_really_is_unreachable_and_stitching_still_works() {
    // Guard the fixture itself: if a future generator change connected
    // `y` to the border's component, the zero-row test above would pass
    // vacuously for the wrong reason.
    let svc = border_with_isolated_subline();
    let y = svc.global_id(ShardId(0), StationId(2)).unwrap();
    let c = svc.global_id(ShardId(1), StationId(1)).unwrap();
    let from_y = svc.s2s(y, c).expect("gateway still answers, with an empty profile");
    assert!(from_y.value.profile.points().is_empty(), "y must not reach the border");

    // And a reachable pair stitches to the known journey: x 8:30 → b0
    // 8:50, 3-minute change, b0 9:40 → c 9:55.
    let x = svc.global_id(ShardId(0), StationId(1)).unwrap();
    let via_border = svc.s2s(x, c).expect("gateway answers cross-shard pairs");
    assert_eq!(
        via_border.value.profile.eval_arr(Time::hm(8, 0), Period::DAY),
        Time::hm(9, 55),
        "x → b0 → c with the border transfer buffer"
    );
}
