//! Cross-crate integration tests: every algorithm must agree with every
//! other on whole generated networks.

use best_connections::prelude::*;
use best_connections::spcs::{label_correcting, multicriteria, time_query};
use best_connections::timetable::synthetic::city::{generate_city, CityConfig};
use best_connections::timetable::synthetic::rail::{generate_rail, RailConfig};

fn city_net(seed: u64) -> Network {
    Network::new(generate_city(&CityConfig::sized(42, 6, seed)))
}

fn rail_net(seed: u64) -> Network {
    Network::new(generate_rail(&RailConfig::national(7, seed)))
}

/// The ground truth: at every departure event of `conn(S)` (and between
/// events), a time-query from S must equal the profile evaluation.
fn assert_profiles_match_time_queries(net: &Network, source: StationId) {
    let set = ProfileEngine::new().threads(2).one_to_all(net, source);
    let period = net.timetable().period();
    // Sample: every 11th outgoing departure plus surrounding instants.
    let deps: Vec<Time> = net
        .timetable()
        .conn(source)
        .iter()
        .step_by(11)
        .flat_map(|c| [c.dep, Time(c.dep.secs().saturating_sub(1)), Time(c.dep.secs() + 61)])
        .filter(|t| period.contains(*t))
        .collect();
    for &dep in deps.iter().take(24) {
        let truth = time_query::earliest_arrivals(net, source, dep);
        for s in net.station_ids() {
            if s == source {
                continue; // see ProfileSet::profile on the source convention
            }
            assert_eq!(
                set.profile(s).eval_arr(dep, period),
                truth.arrival_at(s),
                "station {s} departing {dep}"
            );
        }
    }
}

#[test]
fn profiles_equal_brute_force_time_queries_city() {
    let net = city_net(101);
    for s in [0u32, 11, 40] {
        assert_profiles_match_time_queries(&net, StationId(s));
    }
}

#[test]
fn profiles_equal_brute_force_time_queries_rail() {
    let net = rail_net(5);
    for s in [0u32, 3, 20] {
        assert_profiles_match_time_queries(&net, StationId(s));
    }
}

#[test]
fn lc_and_cs_agree_on_both_network_families() {
    for net in [city_net(7), rail_net(9)] {
        for s in [1u32, 13] {
            let s = StationId(s);
            let lc = label_correcting::profile_search(&net, s);
            let cs = ProfileEngine::new().threads(4).one_to_all(&net, s);
            assert_eq!(lc.profiles, *cs);
        }
    }
}

#[test]
fn every_thread_count_and_strategy_is_equivalent() {
    let net = city_net(23);
    let s = StationId(17);
    let base = ProfileEngine::new().one_to_all(&net, s);
    for p in [2usize, 3, 5, 8] {
        for strat in [
            PartitionStrategy::EqualTimeSlots,
            PartitionStrategy::EqualConnections,
            PartitionStrategy::KMeans { iters: 8 },
        ] {
            let got = ProfileEngine::new().threads(p).strategy(strat).one_to_all(&net, s);
            assert_eq!(base, got, "p={p} {strat:?}");
        }
    }
}

#[test]
fn s2s_equals_one_to_all_for_every_kind() {
    let net = city_net(31);
    let table = DistanceTable::build(&net, &TransferSelection::Fraction(0.15));
    let engine = S2sEngine::new().threads(2).with_table(&table);
    let n = net.num_stations() as u32;
    let mut seen = std::collections::BTreeMap::<String, u32>::new();
    for i in 0..30u32 {
        let s = StationId((i * 11) % n);
        let t = StationId((i * 17 + 5) % n);
        if s == t {
            continue;
        }
        let want = ProfileEngine::new().one_to_all(&net, s);
        let got = engine.query(&net, s, t);
        assert_eq!(&got.profile, want.profile(t), "{s}→{t} {:?}", got.kind);
        *seen.entry(format!("{:?}", got.kind)).or_default() += 1;
    }
    assert!(seen.len() >= 3, "kinds exercised: {seen:?}");
}

#[test]
fn transfer_selections_all_yield_correct_pruning() {
    let net = rail_net(3);
    for sel in [
        TransferSelection::Fraction(0.1),
        TransferSelection::Fraction(0.3),
        TransferSelection::DegreeAbove(2),
    ] {
        let table = DistanceTable::build(&net, &sel);
        if table.is_empty() {
            continue;
        }
        let engine = S2sEngine::new().with_table(&table);
        for (s, t) in [(0u32, 9u32), (4, 30), (22, 1)] {
            let (s, t) = (StationId(s), StationId(t));
            let want = ProfileEngine::new().one_to_all(&net, s);
            let got = engine.query(&net, s, t);
            assert_eq!(&got.profile, want.profile(t), "{s}→{t} with {sel:?}");
        }
    }
}

#[test]
fn pareto_frontier_is_consistent_with_scalar_search() {
    let net = rail_net(13);
    let period = net.timetable().period();
    for (s, t, dep) in [(0u32, 15u32, Time::hm(7, 30)), (6, 2, Time::hm(18, 10))] {
        let (s, t) = (StationId(s), StationId(t));
        let scalar = time_query::earliest_arrival(&net, s, dep, t);
        let pareto = multicriteria::pareto_query(&net, s, dep, t);
        if scalar.is_infinite() {
            assert!(pareto.options.is_empty());
            continue;
        }
        let best = pareto.options.iter().map(|o| o.arrival).min().unwrap();
        assert_eq!(best, scalar);
        // Frontier is strictly improving in arrival as transfers increase.
        for w in pareto.options.windows(2) {
            assert!(w[0].transfers < w[1].transfers);
            assert!(w[0].arrival > w[1].arrival);
        }
        // And the profile search upper-bounds nothing the frontier misses.
        let prof = ProfileEngine::new().one_to_all(&net, s);
        assert_eq!(prof.profile(t).eval_arr(dep, period), scalar);
    }
}

#[test]
fn dynamic_scenario_delays_propagate_through_searches() {
    // The paper's §5.1 point: no preprocessing ⇒ "we can directly use this
    // approach in a fully dynamic scenario". Delay a train, rebuild, and
    // every invariant must still hold while the affected profile worsens.
    use best_connections::timetable::{apply_delay, Recovery};
    let tt = generate_city(&CityConfig::sized(36, 5, 61)).clone();
    let net = Network::new(tt.clone());
    let source = StationId(0);
    let before = ProfileEngine::new().one_to_all(&net, source);

    // Delay the train serving the first outgoing connection by 45 minutes.
    let victim = tt.conn(source)[0].train;
    let delayed_tt = apply_delay(&tt, victim, 0, Dur::minutes(45), Recovery::None);
    let delayed = Network::new(delayed_tt);
    let after_engine = ProfileEngine::new().threads(2).one_to_all(&delayed, source);

    // Correctness on the disrupted timetable: CS still equals LC.
    let lc = label_correcting::profile_search(&delayed, source);
    assert_eq!(lc.profiles, *after_engine);

    // No station may arrive *earlier* than before at the original first
    // departure instant (delays never help; FIFO networks).
    let dep = tt.conn(source)[0].dep;
    let period = tt.period();
    let mut changed = 0;
    for s in net.station_ids() {
        if s == source {
            continue;
        }
        let a = before.profile(s).eval_arr(dep, period);
        let b = after_engine.profile(s).eval_arr(dep, period);
        assert!(b >= a, "delay improved {s}: {a} -> {b}");
        changed += (a != b) as usize;
    }
    assert!(changed > 0, "a 45-minute delay must affect someone");
}

#[test]
fn journeys_are_extractable_along_profiles() {
    use best_connections::spcs::journey::earliest_journey;
    let net = city_net(83);
    let period = net.timetable().period();
    let mut found = 0;
    for (a, b) in [(0u32, 41u32), (7, 19), (30, 2)] {
        let (s, t) = (StationId(a), StationId(b));
        let prof = ProfileEngine::new().one_to_all(&net, s);
        for dep in [Time::hm(7, 0), Time::hm(17, 30)] {
            let want = prof.profile(t).eval_arr(dep, period);
            let j = earliest_journey(&net, s, dep, t);
            match j {
                None => assert!(want.is_infinite()),
                Some(j) => {
                    found += 1;
                    assert_eq!(j.arr(), want, "{s}→{t} at {dep}");
                    assert!(j.dep() >= dep);
                }
            }
        }
    }
    assert!(found >= 4);
}

#[test]
fn stats_are_internally_consistent() {
    let net = city_net(47);
    let r = ProfileEngine::new().threads(3).one_to_all_with_stats(&net, StationId(2));
    assert_eq!(r.thread_settled.iter().sum::<u64>(), r.stats.settled);
    assert!(r.stats.pushes >= r.stats.settled); // everything popped was pushed
    assert!(r.stats.self_pruned <= r.stats.settled);
}
