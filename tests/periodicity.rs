//! The periodicity `Π` is a parameter, not a constant (paper §2): the whole
//! pipeline must behave identically under a non-day period, including
//! wrap-around connections near the period boundary.

use best_connections::prelude::*;
use best_connections::spcs::{label_correcting, time_query};

/// A 2-hour period with service clustered near the boundary so that
/// wrap-around paths are common.
fn two_hour_net() -> (Network, Vec<StationId>) {
    let period = Period::new(2 * 3600);
    let mut b = TimetableBuilder::new(period);
    let s: Vec<_> = (0..4).map(|i| b.add_named_station(format!("{i}"), Dur::minutes(2))).collect();
    // Ring 0 → 1 → 2 → 3 every 25 minutes; legs of 9 minutes mean late
    // trips arrive in the next period.
    for k in 0..5u32 {
        b.add_simple_trip(
            &[s[0], s[1], s[2], s[3]],
            Time(k * 25 * 60),
            &[Dur::minutes(9); 3],
            Dur::minutes(1),
        )
        .unwrap();
        b.add_simple_trip(
            &[s[3], s[2], s[1], s[0]],
            Time(k * 25 * 60 + 600),
            &[Dur::minutes(9); 3],
            Dur::minutes(1),
        )
        .unwrap();
    }
    // One express crossing the boundary outright: departs at 1:55:00,
    // arrives 19 minutes later — in the next period.
    b.add_simple_trip(&[s[0], s[3]], Time(115 * 60), &[Dur::minutes(19)], Dur::ZERO).unwrap();
    (Network::new(b.build().unwrap()), s)
}

#[test]
fn timetable_respects_custom_period() {
    let (net, _) = two_hour_net();
    assert_eq!(net.timetable().period().len(), 7200);
    for c in net.timetable().connections() {
        assert!(c.dep.secs() < 7200, "departure must be period-local");
    }
}

#[test]
fn cs_equals_lc_under_two_hour_period() {
    let (net, s) = two_hour_net();
    for &src in &s {
        let cs = ProfileEngine::new().threads(2).one_to_all(&net, src);
        let lc = label_correcting::profile_search(&net, src);
        assert_eq!(lc.profiles, *cs, "source {src}");
    }
}

#[test]
fn profile_eval_equals_time_query_across_the_boundary() {
    let (net, s) = two_hour_net();
    let period = net.timetable().period();
    let set = ProfileEngine::new().one_to_all(&net, s[0]);
    // Sample the whole period, densest near the boundary.
    let mut deps: Vec<Time> = (0..24).map(|i| Time(i * 300)).collect();
    deps.extend((0..10).map(|i| Time(7200 - 1 - i * 37)));
    for dep in deps {
        let truth = time_query::earliest_arrivals(&net, s[0], dep);
        for &t in &s[1..] {
            assert_eq!(
                set.profile(t).eval_arr(dep, period),
                truth.arrival_at(t),
                "target {t} departing {dep:?}"
            );
        }
    }
}

#[test]
fn wraparound_express_appears_in_the_profile() {
    let (net, s) = two_hour_net();
    let prof = ProfileEngine::new().one_to_all(&net, s[0]);
    let to_3 = prof.profile(s[3]);
    // The 1:55 express (arriving 2:14 absolute) must be a profile point.
    let express = to_3.points().iter().find(|p| p.dep == Time(115 * 60));
    let express = express.expect("express departure in profile");
    assert_eq!(express.arr, Time(115 * 60 + 19 * 60));
}

#[test]
fn s2s_with_table_works_under_custom_period() {
    let (net, s) = two_hour_net();
    let table = DistanceTable::build(&net, &TransferSelection::Fraction(0.5));
    let engine = S2sEngine::new().threads(2).with_table(&table);
    for &src in &s {
        let want = ProfileEngine::new().one_to_all(&net, src);
        for &t in &s {
            if src == t {
                continue;
            }
            let got = engine.query(&net, src, t);
            assert_eq!(&got.profile, want.profile(t), "{src}→{t} ({:?})", got.kind);
        }
    }
}

#[test]
fn delays_wrap_correctly_in_short_periods() {
    use best_connections::timetable::{apply_delay, Recovery};
    let (net, s) = two_hour_net();
    let tt = net.timetable();
    // Delay the express (the last train added) past the period boundary.
    let express_train =
        tt.conn(s[0]).iter().find(|c| c.dep == Time(115 * 60)).expect("express exists").train;
    let delayed = apply_delay(tt, express_train, 0, Dur::minutes(10), Recovery::None);
    let conns = delayed.connections();
    let c = conns.iter().find(|c| c.train == express_train).unwrap();
    // 1:55 + 10 min wraps to 0:05 of the next period.
    assert_eq!(c.dep, Time(5 * 60));
    // And the delayed network still satisfies CS == LC.
    let dnet = Network::new(delayed);
    let cs = ProfileEngine::new().one_to_all(&dnet, s[0]);
    let lc = label_correcting::profile_search(&dnet, s[0]);
    assert_eq!(lc.profiles, *cs);
}
