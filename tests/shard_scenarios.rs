//! Scenario harness for the **sharded multi-network router** (the serving
//! layer above the paper's engines).
//!
//! Drives deterministic random scenarios — interleaved routed queries,
//! batches, station-to-station calls and *mixed* shard-tagged feeds of
//! delays + cancellations — against a [`ShardedService`], mirrored by one
//! standalone [`Network`] per shard that receives exactly the same events.
//! After every step the routing contract is asserted:
//!
//! * every routed query result is **identical** to the same query on the
//!   standalone copy of the owning network — including after every mixed
//!   feed,
//! * each shard's generation moves by exactly one per feed that changed it
//!   and not at all otherwise (untouched shards never move),
//! * each shard's distance table is fresh again after every feed (the
//!   router's one scoped refresh per shard),
//! * cross-shard station-to-station queries come back as the typed
//!   [`RouterError::CrossShard`] with the correct owners.
//!
//! Deterministic companions cover the router edge cases: a directory that
//! maps every station, the `WrongShard` redirect round-trip, the
//! empty-shard (net-nil) feed, and per-shard cache isolation.

use proptest::prelude::*;

use best_connections::prelude::*;

/// A random trip, as in `tests/feed_scenarios.rs`.
#[derive(Debug, Clone)]
struct TripSpec {
    path: Vec<u8>,
    start_min: u32,
    leg_min: Vec<u16>,
    dwell_min: u8,
}

fn trip_strategy(n: u8) -> impl Strategy<Value = TripSpec> {
    (2usize..=4)
        .prop_flat_map(move |len| {
            (
                prop::collection::vec(0..n, len),
                0u32..(24 * 60),
                prop::collection::vec(1u16..=120, len - 1),
                0u8..=4,
            )
        })
        .prop_map(|(path, start_min, leg_min, dwell_min)| TripSpec {
            path,
            start_min,
            leg_min,
            dwell_min,
        })
}

/// One shard's timetable: station count (3..=5) plus trips.
#[derive(Debug, Clone)]
struct ShardSpec {
    transfer_min: Vec<u8>,
    trips: Vec<TripSpec>,
}

fn shard_strategy() -> impl Strategy<Value = ShardSpec> {
    (3usize..=5)
        .prop_flat_map(|n| {
            (
                prop::collection::vec(0u8..=6, n),
                prop::collection::vec(trip_strategy(n as u8), 2..=6),
            )
        })
        .prop_map(|(transfer_min, trips)| ShardSpec { transfer_min, trips })
}

fn build(spec: &ShardSpec) -> Option<Timetable> {
    let mut b = TimetableBuilder::new(Period::DAY);
    for (i, &tm) in spec.transfer_min.iter().enumerate() {
        b.add_named_station(format!("S{i}"), Dur::minutes(tm as u32));
    }
    let mut added = 0;
    for t in &spec.trips {
        let mut path: Vec<StationId> = Vec::new();
        for &p in &t.path {
            let s = StationId(p as u32);
            if path.last() != Some(&s) {
                path.push(s);
            }
        }
        if path.len() < 2 {
            continue;
        }
        let legs: Vec<Dur> =
            t.leg_min.iter().take(path.len() - 1).map(|&m| Dur::minutes(m as u32)).collect();
        if b.add_simple_trip(&path, Time(t.start_min * 60), &legs, Dur::minutes(t.dwell_min as u32))
            .is_err()
        {
            return None;
        }
        added += 1;
    }
    if added == 0 {
        return None;
    }
    b.build().ok()
}

/// One raw feed event, tagged with a shard pick; ids are reduced modulo
/// the shard/train counts at run time.
#[derive(Debug, Clone)]
enum RawEvent {
    Delay { train: u32, hop: u16, delay_min: u16, recover_min: u8 },
    Cancel { train: u32 },
}

fn event_strategy() -> impl Strategy<Value = (u8, RawEvent)> {
    let ev = prop_oneof![
        3 => (0u32..1024, 0u16..4, 1u16..180, 0u8..25).prop_map(
            |(train, hop, delay_min, recover_min)| RawEvent::Delay {
                train, hop, delay_min, recover_min
            }
        ),
        1 => (0u32..1024).prop_map(|train| RawEvent::Cancel { train }),
    ];
    (0u8..8, ev)
}

/// One step of a scenario.
#[derive(Debug, Clone)]
enum Op {
    Feed(Vec<(u8, RawEvent)>),
    Query { station: u32 },
    S2s { s: u32, t: u32 },
    Batch { stations: Vec<u32> },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        2 => prop::collection::vec(event_strategy(), 1..=10).prop_map(Op::Feed),
        2 => (0u32..1024).prop_map(|station| Op::Query { station }),
        1 => (0u32..1024, 0u32..1024).prop_map(|(s, t)| Op::S2s { s, t }),
        1 => prop::collection::vec(0u32..1024, 2..=6).prop_map(|stations| Op::Batch { stations }),
    ]
}

fn to_event(raw: &RawEvent, num_trains: u32) -> DelayEvent {
    match *raw {
        RawEvent::Delay { train, hop, delay_min, recover_min } => DelayEvent::Delay {
            train: TrainId(train % num_trains),
            from_hop: hop,
            delay: Dur::minutes(delay_min as u32),
            recovery: if recover_min == 0 {
                Recovery::None
            } else {
                Recovery::CatchUp { per_hop: Dur::minutes(recover_min as u32) }
            },
        },
        RawEvent::Cancel { train } => DelayEvent::Cancel { train: TrainId(train % num_trains) },
    }
}

/// Asserts one routed one-to-all against the standalone mirror.
fn check_query(
    svc: &mut ShardedService,
    mirrors: &[Network],
    global: StationId,
) -> Result<(), TestCaseError> {
    let (shard, local) = svc.locate(global).expect("workload stays in range");
    let routed = svc.one_to_all(global).expect("located stations answer");
    prop_assert_eq!(routed.shard, shard);
    let want = ProfileEngine::new().one_to_all(&mirrors[shard.idx()], local);
    prop_assert_eq!(&routed.value, &want, "sharded != standalone from {} ({})", global, shard);
    Ok(())
}

/// Runs one scenario; see the module docs for the invariants.
fn run_scenario(specs: &[ShardSpec], ops: Vec<Op>) -> Result<(), TestCaseError> {
    let mut nets = Vec::new();
    for spec in specs {
        match build(spec) {
            Some(tt) => nets.push(Network::new(tt)),
            None => return Ok(()), // degenerate timetable: skip the case
        }
    }
    // Every generated shard has >= 3 stations, so 0 and 1 always exist:
    // each shard carries a real distance table the router must keep fresh.
    let mut svc = ShardedService::builder()
        .threads(2)
        .cache(16)
        .tables(TransferSelection::Explicit(vec![StationId(0), StationId(1)]))
        .build(nets);
    let mirrors: &mut Vec<Network> = &mut svc
        .shard_ids()
        .map(|sh| Network::build(svc.network(sh).unwrap().timetable()))
        .collect();
    let num_shards = svc.num_shards() as u8;
    let total = svc.num_stations() as u32;

    for op in ops {
        match op {
            Op::Feed(raw) => {
                let feed: Vec<(ShardId, DelayEvent)> = raw
                    .iter()
                    .map(|(pick, ev)| {
                        let shard = ShardId((pick % num_shards) as u32);
                        let trains = mirrors[shard.idx()].timetable().num_trains() as u32;
                        (shard, to_event(ev, trains.max(1)))
                    })
                    .collect();
                let gens: Vec<u64> =
                    svc.shard_ids().map(|sh| svc.network(sh).unwrap().generation()).collect();
                let summary = svc.apply_feed(&feed).expect("tagged shards exist");
                prop_assert_eq!(summary.events.len(), feed.len());

                // Mirror each shard's slice of the feed, in order.
                for (shard, mirror) in svc.shard_ids().zip(mirrors.iter_mut()) {
                    let slice: Vec<DelayEvent> =
                        feed.iter().filter(|(sh, _)| *sh == shard).map(|&(_, ev)| ev).collect();
                    let gen_now = svc.network(shard).unwrap().generation();
                    let before = gens[shard.idx()];
                    if slice.is_empty() {
                        prop_assert_eq!(gen_now, before, "untouched {} moved", shard);
                        prop_assert!(summary.outcome(shard).is_none());
                        continue;
                    }
                    let mirror_summary = mirror.apply_feed(&slice);
                    let outcome = summary.outcome(shard).expect("fed shard has an outcome");
                    prop_assert_eq!(
                        outcome.summary.changed(),
                        mirror_summary.changed(),
                        "{} disagrees with its mirror about the feed",
                        shard
                    );
                    // One generation bump per shard per feed (zero if nil).
                    let expected = before + u64::from(mirror_summary.changed());
                    prop_assert_eq!(gen_now, expected, "{} must bump once per feed", shard);
                    // The router's scoped refresh left the table fresh (its
                    // row count may legitimately be zero: no transfer
                    // station needs to reach the touched set).
                    let table = svc.table(shard).unwrap().expect("tables enabled");
                    prop_assert!(table.check_fresh(&svc.network(shard).unwrap()).is_ok());
                }
                // Post-feed: every shard still answers like its mirror.
                for shard in svc.shard_ids() {
                    let g = svc.global_id(shard, StationId(0)).unwrap();
                    check_query(&mut svc, mirrors, g)?;
                }
            }
            Op::Query { station } => {
                check_query(&mut svc, mirrors, StationId(station % total))?;
            }
            Op::S2s { s, t } => {
                let (s, t) = (StationId(s % total), StationId(t % total));
                let (s_shard, s_local) = svc.locate(s).unwrap();
                let (t_shard, t_local) = svc.locate(t).unwrap();
                let got = svc.s2s(s, t);
                if s_shard != t_shard {
                    prop_assert_eq!(
                        got.unwrap_err(),
                        RouterError::CrossShard { source: s_shard, target: t_shard }
                    );
                } else {
                    let routed = got.expect("same-shard pair answers");
                    prop_assert_eq!(routed.shard, s_shard);
                    let want = ProfileEngine::new().one_to_all(&mirrors[s_shard.idx()], s_local);
                    prop_assert_eq!(
                        &routed.value.profile,
                        want.profile(t_local),
                        "s2s {}→{} on {}",
                        s,
                        t,
                        s_shard
                    );
                }
            }
            Op::Batch { stations } => {
                let globals: Vec<StationId> =
                    stations.iter().map(|&s| StationId(s % total)).collect();
                let out = svc.many_to_all(&globals);
                prop_assert_eq!(out.len(), globals.len());
                for (r, &g) in out.iter().zip(&globals) {
                    let (shard, local) = svc.locate(g).unwrap();
                    let routed = r.as_ref().expect("located stations answer");
                    prop_assert_eq!(routed.shard, shard);
                    let want = ProfileEngine::new().one_to_all(&mirrors[shard.idx()], local);
                    prop_assert_eq!(&routed.value, &want, "batched query from {}", g);
                }
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 5, ..ProptestConfig::default() })]

    // Random shard sets under random interleavings of routed queries,
    // batches, s2s calls and mixed feeds.
    #[test]
    fn sharded_service_always_equals_standalone_networks(
        specs in prop::collection::vec(shard_strategy(), 2..=3),
        ops in prop::collection::vec(op_strategy(), 6..=10),
    ) {
        run_scenario(&specs, ops)?;
    }
}

/// Two small two-line networks for the deterministic companions;
/// `offset_min` staggers the schedules so the shards answer differently.
fn two_city_service(cache: usize) -> ShardedService {
    let city = |offset_min: u32| {
        let mut b = TimetableBuilder::new(Period::DAY);
        let s: Vec<_> =
            (0..3).map(|i| b.add_named_station(format!("{i}"), Dur::minutes(1))).collect();
        for h in [7u32, 8, 9] {
            b.add_simple_trip(
                &[s[0], s[1], s[2]],
                Time::hm(h, 0) + Dur::minutes(offset_min),
                &[Dur::minutes(12), Dur::minutes(9)],
                Dur::ZERO,
            )
            .unwrap();
        }
        Network::new(b.build().unwrap())
    };
    ShardedService::builder().cache(cache).build(vec![city(0), city(17)])
}

#[test]
fn directory_maps_every_station_both_ways() {
    let svc = two_city_service(4);
    assert_eq!(svc.num_stations(), 6);
    for shard in svc.shard_ids() {
        for g in svc.station_range(shard).unwrap() {
            let (owner, local) = svc.locate(StationId(g)).unwrap();
            assert_eq!(owner, shard, "global {g}");
            assert_eq!(svc.global_id(shard, local).unwrap(), StationId(g));
        }
    }
    assert!(matches!(
        svc.locate(StationId(6)),
        Err(RouterError::UnknownStation { station: StationId(6) })
    ));
}

#[test]
fn wrong_shard_error_redirects_to_the_owner() {
    let svc = two_city_service(4);
    let global = svc.global_id(ShardId(1), StationId(2)).unwrap();
    let err = svc.one_to_all_on(ShardId(0), global).unwrap_err();
    let RouterError::WrongShard { owner, queried, station } = err else {
        panic!("expected WrongShard, got {err:?}");
    };
    assert_eq!((station, queried, owner), (global, ShardId(0), ShardId(1)));
    // Redirect round-trip: the owner answers, identically to plain routing.
    let redirected = svc.one_to_all_on(owner, global).unwrap();
    assert_eq!(redirected.shard, ShardId(1));
    assert_eq!(redirected.value, svc.one_to_all(global).unwrap().value);
}

#[test]
fn empty_shard_feed_bumps_nothing() {
    let svc = two_city_service(4);
    let gens: Vec<u64> = svc.shard_ids().map(|sh| svc.network(sh).unwrap().generation()).collect();
    // A cancellation of a never-delayed train nets out: no bump anywhere,
    // and shard 1 received no events at all.
    let summary =
        svc.apply_feed(&[(ShardId(0), DelayEvent::Cancel { train: TrainId(0) })]).unwrap();
    assert!(!summary.changed());
    assert_eq!(summary.events, vec![DelayUpdate::Unchanged]);
    assert!(summary.outcome(ShardId(1)).is_none(), "shard without events has no outcome");
    let after: Vec<u64> = svc.shard_ids().map(|sh| svc.network(sh).unwrap().generation()).collect();
    assert_eq!(after, gens, "net-nil feed must not bump any shard");
}

#[test]
fn feed_to_one_shard_cannot_evict_anothers_hits() {
    let svc = two_city_service(4);
    let a = svc.global_id(ShardId(0), StationId(0)).unwrap();
    let b = svc.global_id(ShardId(1), StationId(0)).unwrap();
    let _ = svc.one_to_all(a).unwrap();
    let _ = svc.one_to_all(b).unwrap();
    // A real delay feed to shard A only.
    let summary = svc
        .apply_feed(&[(
            ShardId(0),
            DelayEvent::Delay {
                train: TrainId(0),
                from_hop: 0,
                delay: Dur::minutes(6),
                recovery: Recovery::None,
            },
        )])
        .unwrap();
    assert!(summary.changed());
    // Shard B's stripe still hits…
    let b_before = svc.shard_cache_stats(ShardId(1)).unwrap().unwrap();
    let _ = svc.one_to_all(b).unwrap();
    let b_after = svc.shard_cache_stats(ShardId(1)).unwrap().unwrap();
    assert_eq!(b_after.hits, b_before.hits + 1, "shard A's feed must not touch B's stripe");
    assert_eq!(b_after.evictions, 0);
    // …while shard A's own entry stopped matching (new generation).
    let a_before = svc.shard_cache_stats(ShardId(0)).unwrap().unwrap();
    let _ = svc.one_to_all(a).unwrap();
    let a_after = svc.shard_cache_stats(ShardId(0)).unwrap().unwrap();
    assert_eq!(a_after.misses, a_before.misses + 1, "shard A must re-search after its feed");
}
