//! Copy-on-write correctness scenarios for the snapshot publish path.
//!
//! Since the O(touched) publish refactor, a published [`NetworkSnapshot`]
//! *shares* every untouched `conn(S)` bucket, route block, hop PLF and
//! distance-table row with the master (and with neighbouring snapshots)
//! by refcount. Sharing is only sound if it is never observable: these
//! scenarios pin a snapshot, hammer the master with K mixed feeds, and
//! assert the pinned state stays bitwise-identical to a from-scratch
//! rebuild of its own generation — any shared-mutable leak through the
//! new `Arc`s (a patch mutating a bucket in place instead of unsharing
//! it first) shows up as a diverged connection or profile.

use proptest::prelude::*;

use best_connections::prelude::*;
use best_connections::timetable::synthetic::city::{generate_city, CityConfig};

/// A deterministic mixed feed (delays + cancellations), varying with
/// `step` so successive feeds hit different trains and routes.
fn feed(step: u64, num_trains: u32) -> Vec<DelayEvent> {
    let k = 1 + (step % 4) as u32;
    (0..k)
        .map(|i| {
            let train = TrainId((step as u32).wrapping_mul(13).wrapping_add(i * 5) % num_trains);
            if (step + u64::from(i)) % 6 == 5 {
                DelayEvent::Cancel { train }
            } else {
                DelayEvent::Delay {
                    train,
                    from_hop: ((step + u64::from(i)) % 3) as u16,
                    delay: Dur::minutes(1 + (step as u32 * 3 + i) % 55),
                    recovery: if step.is_multiple_of(4) {
                        Recovery::CatchUp { per_hop: Dur::minutes(2) }
                    } else {
                        Recovery::None
                    },
                }
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 5, ..ProptestConfig::default() })]

    // A reader pinned across K mixed feeds sees answers bitwise-identical
    // to a from-scratch rebuild of its pinned generation, and mutating
    // the master never observably changes the pinned snapshot.
    #[test]
    fn pinned_snapshot_is_immutable_across_feeds(
        seed in 0u64..1000,
        num_feeds in 2usize..=6,
        pin_after in 0usize..=2,
    ) {
        let net = Network::new(generate_city(&CityConfig::sized(16, 3, seed)));
        let num_trains = net.timetable().num_trains() as u32;
        let n = net.num_stations() as u32;
        if num_trains == 0 || n == 0 {
            return Ok(());
        }
        let cnet = ConcurrentNetwork::with_table(net, &TransferSelection::Fraction(0.4));

        // Advance the master a little before pinning, so the pin is not
        // always the pristine initial state.
        for step in 0..pin_after {
            cnet.apply_feed(&feed(step as u64, num_trains));
        }

        let pinned = cnet.snapshot();
        let pinned_gen = pinned.generation();
        // Capture the pinned state *by value* at pin time: a materialized
        // copy of every connection, and a from-scratch rebuild (fresh
        // epoch, no shared derived structures) of the same timetable.
        let conns_at_pin = pinned.timetable().connections();
        let rebuilt = Network::build(pinned.timetable());
        let table_at_pin = pinned.shared_table().expect("table configured");

        // K mixed feeds mutate the master; the pinned snapshot must not
        // observe any of them.
        for step in 0..num_feeds {
            cnet.apply_feed(&feed(100 + step as u64, num_trains));
        }

        prop_assert_eq!(pinned.generation(), pinned_gen, "pinned generation moved");
        prop_assert_eq!(
            pinned.timetable().connections(),
            conns_at_pin,
            "a feed on the master leaked into the pinned timetable"
        );
        // The pinned table still serves the pinned state (its validity
        // range may have grown, never shrunk) and its entries still match
        // a from-scratch table of the pinned generation.
        prop_assert!(table_at_pin.check_fresh(pinned.network()).is_ok());
        let table_rebuilt = DistanceTable::build_for(&rebuilt, table_at_pin.stations().to_vec());
        for &a in table_at_pin.stations() {
            for &b in table_at_pin.stations() {
                prop_assert_eq!(
                    table_at_pin.profile(a, b),
                    table_rebuilt.profile(a, b),
                    "pinned D({}, {}) diverged from a rebuild of the pinned generation",
                    a,
                    b
                );
            }
        }
        // Query answers on the pinned snapshot are bitwise the answers of
        // the rebuilt network.
        let engine = ProfileEngine::new();
        for k in 0..4u32.min(n) {
            let s = StationId(k * n / 4);
            let on_pinned = engine.one_to_all(&pinned, s);
            let on_rebuilt = engine.one_to_all(&rebuilt, s);
            prop_assert_eq!(&on_pinned, &on_rebuilt, "source {} diverged on the pin", s);
        }
        // And the *current* snapshot answers like a rebuild of the
        // current state — sharing corrupted neither side.
        let fresh = cnet.snapshot();
        let fresh_rebuilt = Network::build(fresh.timetable());
        for k in 0..3u32.min(n) {
            let s = StationId(k * n / 3);
            let a = engine.one_to_all(&fresh, s);
            let b = engine.one_to_all(&fresh_rebuilt, s);
            prop_assert_eq!(&a, &b, "source {} diverged on the fresh snapshot", s);
        }
    }
}

/// A single-train delay unshares only what it touches: successive
/// snapshots share the bulk of their buckets, route blocks and PLFs, and
/// the graph topology allocation outright (no overtaking rebuild).
#[test]
fn single_delay_publish_shares_the_untouched_bulk() {
    let net = Network::new(generate_city(&CityConfig::sized(40, 5, 7)));
    let stations = net.num_stations();
    let cnet = ConcurrentNetwork::new(net);
    let before = cnet.snapshot();
    let outcome = cnet.apply_feed(&[DelayEvent::Delay {
        train: TrainId(0),
        from_hop: 0,
        delay: Dur::minutes(7),
        recovery: Recovery::None,
    }]);
    assert!(outcome.summary.changed());
    assert!(!outcome.summary.rebuilt(), "a small delay must stay on the repatch fast path");
    let after = cnet.snapshot();

    let touched = outcome.summary.touched_stations.len();
    let shared_buckets = after.timetable().shared_buckets_with(before.timetable());
    assert!(
        shared_buckets >= stations - touched,
        "only the {touched} touched buckets may be unshared, \
         but {shared_buckets}/{stations} are shared"
    );
    assert!(shared_buckets < stations, "the touched buckets must be unshared");

    let shared_routes = after.routes().shared_routes_with(before.routes());
    assert!(
        shared_routes >= after.routes().len() - outcome.summary.touched_routes,
        "only touched routes may be unshared"
    );

    let (shared_plfs, topo_shared) = after.graph().shared_plfs_with(before.graph());
    assert!(topo_shared, "a repatch never rebuilds the topology");
    assert!(shared_plfs > 0, "untouched PLFs must stay shared");

    // The publish outcome reports the copy-on-write cost.
    assert!(outcome.publish_ns > 0);
}

/// The master and a pinned snapshot may share a distance-table `Arc`; a
/// refresh that rewrites rows must unshare before writing (the pinned
/// reader keeps its old rows), while a refresh that rewrites nothing
/// keeps the very same allocation published.
#[test]
fn table_rows_unshare_exactly_when_rewritten() {
    let net = Network::new(generate_city(&CityConfig::sized(30, 4, 3)));
    let num_trains = net.timetable().num_trains() as u32;
    let cnet = ConcurrentNetwork::with_table(net, &TransferSelection::Fraction(0.3));
    let pinned = cnet.snapshot();
    let pinned_table = pinned.shared_table().unwrap();
    let rebuilt_at_pin = Network::build(pinned.timetable());

    let outcome = cnet.apply_feed(&feed(1, num_trains));
    assert!(outcome.summary.changed());
    let after = cnet.snapshot();
    let after_table = after.shared_table().unwrap();

    if outcome.table_rows_refreshed == 0 {
        assert!(std::sync::Arc::ptr_eq(&pinned_table, &after_table));
    } else {
        assert!(!std::sync::Arc::ptr_eq(&pinned_table, &after_table));
        let n = pinned_table.len();
        let shared = after_table.shared_rows_with(&pinned_table);
        assert_eq!(
            shared,
            n - outcome.table_rows_refreshed,
            "exactly the refreshed rows must be unshared"
        );
    }
    // Either way the pinned reader still sees its own generation's rows.
    assert!(pinned_table.check_fresh(pinned.network()).is_ok());
    let reference = DistanceTable::build_for(&rebuilt_at_pin, pinned_table.stations().to_vec());
    for &a in pinned_table.stations() {
        for &b in pinned_table.stations() {
            assert_eq!(pinned_table.profile(a, b), reference.profile(a, b), "D({a}, {b})");
        }
    }
}
