//! Kernel identity: the bucketed SoA kernel and the scalar binary-heap
//! reference must produce exactly equal reduced profiles — one-to-all and
//! station-to-station, sequential and parallel, before and after live
//! delay updates. The scalar path is the arbiter of correctness; these
//! tests force both kernels explicitly (`Auto` would route the tiny
//! random networks to the scalar path and test nothing).

use proptest::prelude::*;

use best_connections::prelude::*;

/// A random trip: station path (indices into 0..n), start minute, leg
/// durations in minutes, dwell minutes.
#[derive(Debug, Clone)]
struct TripSpec {
    path: Vec<u8>,
    start_min: u32,
    leg_min: Vec<u16>,
    dwell_min: u8,
}

fn trip_strategy(n: u8) -> impl Strategy<Value = TripSpec> {
    (2usize..=5)
        .prop_flat_map(move |len| {
            (
                prop::collection::vec(0..n, len),
                0u32..(24 * 60),
                prop::collection::vec(1u16..=130, len - 1),
                0u8..=5,
            )
        })
        .prop_map(|(path, start_min, leg_min, dwell_min)| TripSpec {
            path,
            start_min,
            leg_min,
            dwell_min,
        })
}

/// Builds a timetable from specs; consecutive duplicate stations in a path
/// are skipped (the builder rejects self-loops).
fn build(transfer_min: &[u8], trips: Vec<TripSpec>) -> Option<Timetable> {
    let mut b = TimetableBuilder::new(Period::DAY);
    for (i, &tm) in transfer_min.iter().enumerate() {
        b.add_named_station(format!("S{i}"), Dur::minutes(tm as u32));
    }
    let mut added = 0;
    for t in trips {
        let mut path: Vec<StationId> = Vec::new();
        for &p in &t.path {
            let s = StationId(p as u32);
            if path.last() != Some(&s) {
                path.push(s);
            }
        }
        if path.len() < 2 {
            continue;
        }
        let legs: Vec<Dur> =
            t.leg_min.iter().take(path.len() - 1).map(|&m| Dur::minutes(m as u32)).collect();
        b.add_simple_trip(&path, Time(t.start_min * 60), &legs, Dur::minutes(t.dwell_min as u32))
            .ok()?;
        added += 1;
    }
    if added == 0 {
        return None;
    }
    b.build().ok()
}

fn one_to_all_engines() -> (ProfileEngine, ProfileEngine) {
    (ProfileEngine::new().kernel(KernelMode::Scalar), ProfileEngine::new().kernel(KernelMode::Soa))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn soa_equals_scalar_on_random_timetables(
        transfer_min in prop::collection::vec(0u8..=8, 3..=6),
        trips in prop::collection::vec(trip_strategy(6), 1..=10),
    ) {
        let Some(tt) = build(&transfer_min, trips) else { return Ok(()) };
        let net = Network::new(tt);
        let (scalar, soa) = one_to_all_engines();
        let par = ProfileEngine::new().kernel(KernelMode::Soa).threads(3);
        for s in net.station_ids() {
            let want = scalar.one_to_all(&net, s);
            prop_assert_eq!(&soa.one_to_all(&net, s), &want, "source {}", s);
            // The parallel master-merge runs its SoA form here.
            prop_assert_eq!(&par.one_to_all(&net, s), &want, "parallel from {}", s);
        }
    }

    #[test]
    fn s2s_soa_equals_scalar_incl_after_delay(
        transfer_min in prop::collection::vec(0u8..=8, 3..=6),
        trips in prop::collection::vec(trip_strategy(6), 2..=10),
        delay_min in 1u32..=90,
    ) {
        let Some(tt) = build(&transfer_min, trips) else { return Ok(()) };
        let mut net = Network::new(tt);
        let scalar = S2sEngine::new().kernel(KernelMode::Scalar);
        let soa = S2sEngine::new().kernel(KernelMode::Soa);
        // Before and after a live delay patch: the kernel's edge-span bound
        // must stay valid under repatched travel-time functions.
        for round in 0..2 {
            for s in net.station_ids() {
                for t in net.station_ids() {
                    if s == t { continue; }
                    let want = scalar.query(&net, s, t);
                    let got = soa.query(&net, s, t);
                    prop_assert_eq!(
                        &got.profile, &want.profile,
                        "{} → {} round {}", s, t, round
                    );
                }
            }
            net.apply_delay(TrainId(0), 0, Dur::minutes(delay_min), Recovery::None);
        }
    }
}

/// Deterministic fast check on a generated city: forced-SoA results equal
/// forced-scalar results, the kernel actually ran (its counters are live),
/// and `Auto` resolves to the same profiles either way.
#[test]
fn kernel_identity_on_generated_city() {
    let net =
        Network::new(best_connections::timetable::synthetic::presets::oahu_like(0.05).timetable);
    let (scalar, soa) = one_to_all_engines();
    let auto = ProfileEngine::new();
    let sources: Vec<StationId> = net.station_ids().step_by(7).collect();
    for &s in &sources {
        let want = scalar.one_to_all_with_stats(&net, s);
        let got = soa.one_to_all_with_stats(&net, s);
        assert_eq!(got.profiles, want.profiles, "source {s}");
        assert_eq!(auto.one_to_all(&net, s), want.profiles, "auto, source {s}");
        assert!(got.stats.bucket_phases > 0, "SoA kernel must have swept buckets");
        assert!(got.stats.lane_chunks > 0, "SoA kernel must have filled lanes");
        assert_eq!(want.stats.bucket_phases, 0, "scalar path must not touch the ring");
        // The bucket pre-sweep prunes equal-key ties maximally, so the
        // kernel never settles more than the heap's arbitrary tie order.
        assert!(
            got.stats.settled <= want.stats.settled,
            "source {s}: SoA settled {} > scalar {}",
            got.stats.settled,
            want.stats.settled
        );
    }
    // Station-to-station, with and without the stopping criterion.
    let s2s_scalar = S2sEngine::new().kernel(KernelMode::Scalar);
    let s2s_soa = S2sEngine::new().kernel(KernelMode::Soa);
    let nostop = S2sEngine::new().kernel(KernelMode::Soa).stopping_criterion(false);
    for (&s, &t) in sources.iter().zip(sources.iter().rev()) {
        if s == t {
            continue;
        }
        let want = s2s_scalar.query(&net, s, t);
        assert_eq!(s2s_soa.query(&net, s, t).profile, want.profile, "{s} → {t}");
        assert_eq!(nostop.query(&net, s, t).profile, want.profile, "{s} → {t} no-stop");
    }
}
