//! Threaded stress scenarios for the snapshot-isolated serving core.
//!
//! The contract under test: while a writer streams delay feeds through
//! [`ConcurrentNetwork::apply_feed`] / [`ShardedService::apply_feed`],
//! every concurrent reader answer is **exactly** the answer of one
//! published state — the pre-feed or post-feed network — and never a torn
//! mix of both. Readers verify their own answers against a from-scratch
//! rebuild of the snapshot they pinned, and pinned generations are
//! monotone per reader and always members of the published set.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use proptest::prelude::*;

use best_connections::prelude::*;
use best_connections::timetable::synthetic::city::{generate_city, CityConfig};

/// A deterministic pseudo-random delay feed: `k` delay/cancel events on
/// the first trains, parameterized by `step` so successive feeds differ.
fn feed(step: u64, num_trains: u32) -> Vec<DelayEvent> {
    let k = 2 + (step % 3) as u32;
    (0..k)
        .map(|i| {
            let train = TrainId((step as u32).wrapping_mul(7).wrapping_add(i * 3) % num_trains);
            if (step + u64::from(i)) % 5 == 4 {
                DelayEvent::Cancel { train }
            } else {
                DelayEvent::Delay {
                    train,
                    from_hop: (step % 2) as u16,
                    delay: Dur::minutes(1 + (step as u32 + i) % 40),
                    recovery: Recovery::None,
                }
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    // Readers pinning snapshots mid-stream always see exactly one
    // published state: each answer equals a from-scratch rebuild of the
    // pinned snapshot's timetable, and the pinned generations are
    // monotone per reader and members of the published set.
    #[test]
    fn reader_during_writer_sees_pre_or_post_feed_only(
        seed in 0u64..500,
        readers in 2usize..=4,
        queries_per_reader in 3usize..=6,
    ) {
        let net = Network::new(generate_city(&CityConfig::sized(18, 3, seed)));
        let num_trains = net.timetable().num_trains() as u32;
        let n = net.num_stations() as u32;
        if num_trains == 0 || n == 0 {
            return Ok(());
        }
        let initial_gen = net.generation();
        let cnet = ConcurrentNetwork::new(net);
        let engine = ProfileEngine::new().with_cache(32);
        let published: Mutex<Vec<u64>> = Mutex::new(vec![initial_gen]);
        let done = AtomicBool::new(false);

        let violations: Vec<String> = std::thread::scope(|scope| {
            let writer = scope.spawn(|| {
                let mut step = seed;
                while !done.load(Ordering::Relaxed) {
                    let outcome = cnet.apply_feed(&feed(step, num_trains));
                    if let Some(snap) = outcome.published {
                        published.lock().unwrap().push(snap.generation());
                    }
                    step += 1;
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
            });
            let readers: Vec<_> = (0..readers)
                .map(|r| {
                    let engine = &engine;
                    let cnet = &cnet;
                    scope.spawn(move || {
                        let mut bad = Vec::new();
                        let mut last_gen = 0u64;
                        for q in 0..queries_per_reader {
                            let snap = cnet.snapshot();
                            let gen = snap.generation();
                            if gen < last_gen {
                                bad.push(format!(
                                    "reader {r}: generation went backwards ({last_gen} → {gen})"
                                ));
                            }
                            last_gen = gen;
                            let source = StationId((r as u32 + q as u32 * 5) % n);
                            // The answer on the pinned snapshot, through the
                            // shared engine + cache …
                            let got = engine.one_to_all(snap.network(), source);
                            // … must equal a from-scratch rebuild of exactly
                            // that state: pre-feed or post-feed, never torn.
                            let standalone = Network::build(snap.timetable());
                            let want = ProfileEngine::new().one_to_all(&standalone, source);
                            if *got != *want {
                                bad.push(format!(
                                    "reader {r}: torn answer from {source} at generation {gen}"
                                ));
                            }
                        }
                        bad
                    })
                })
                .collect();
            let mut all = Vec::new();
            for handle in readers {
                all.extend(handle.join().expect("reader must not panic"));
            }
            done.store(true, Ordering::Relaxed);
            writer.join().expect("writer must not panic");
            all
        });
        prop_assert!(violations.is_empty(), "{:?}", violations);

        // Every reader-observed generation is a published one: re-check the
        // final snapshot against the log.
        let log = published.into_inner().unwrap();
        let last = cnet.snapshot().generation();
        prop_assert!(log.contains(&last), "final generation {} not in published log", last);
        prop_assert_eq!(cnet.publishes() as usize + 1, log.len());
    }
}

/// Service-level stress: M reader threads hammer a shared
/// [`ShardedService`] (`&self` queries) while a writer streams mixed
/// feeds. Every one-to-all and s2s answer must match a from-scratch
/// compute of one recorded published state of the owning shard.
#[test]
fn sharded_service_survives_concurrent_readers_and_feeds() {
    let nets: Vec<Network> =
        (0..3).map(|i| Network::new(generate_city(&CityConfig::sized(16, 3, 40 + i)))).collect();
    let num_trains: Vec<u32> = nets.iter().map(|n| n.timetable().num_trains() as u32).collect();
    let svc = ShardedService::builder()
        .cache(32)
        .s2s_cache(32)
        .tables(TransferSelection::Fraction(0.2))
        .build(nets);

    // Per shard, every state the service may legitimately answer from:
    // the initial snapshot plus everything the writer publishes.
    let states: Vec<Mutex<Vec<std::sync::Arc<NetworkSnapshot>>>> =
        svc.shard_ids().map(|sh| Mutex::new(vec![svc.network(sh).unwrap()])).collect();
    let done = AtomicBool::new(false);

    let violations: Vec<String> = std::thread::scope(|scope| {
        let writer = scope.spawn(|| {
            let mut step = 0u64;
            while !done.load(Ordering::Relaxed) {
                let shard = ShardId((step % 3) as u32);
                let events: Vec<(ShardId, DelayEvent)> =
                    feed(step, num_trains[shard.idx()]).into_iter().map(|e| (shard, e)).collect();
                let summary = svc.apply_feed(&events).expect("known shard");
                if summary.changed() {
                    states[shard.idx()].lock().unwrap().push(svc.network(shard).unwrap());
                }
                step += 1;
                std::thread::sleep(std::time::Duration::from_micros(300));
            }
        });
        let readers: Vec<_> = (0..4)
            .map(|r| {
                let svc = &svc;
                let states = &states;
                scope.spawn(move || {
                    let mut bad = Vec::new();
                    for q in 0..6u32 {
                        let global = StationId((r * 13 + q * 7) % svc.num_stations() as u32);
                        let routed = svc.one_to_all(global).expect("global id in range");
                        let (shard, local) = svc.locate(global).unwrap();
                        assert_eq!(shard, routed.shard);
                        // The answer must equal a fresh compute on SOME
                        // recorded published state of the owning shard.
                        let candidates = states[shard.idx()].lock().unwrap().clone();
                        let fresh = ProfileEngine::new();
                        let matched = candidates
                            .iter()
                            .any(|snap| *fresh.one_to_all(snap.network(), local) == *routed.value);
                        if !matched {
                            bad.push(format!(
                                "reader {r}: one_to_all({global}) matches no published state \
                                 of {shard} ({} candidates)",
                                candidates.len()
                            ));
                        }
                        // An s2s query within the same shard, under the same
                        // no-torn-state contract.
                        let range = svc.station_range(shard).unwrap();
                        let target = StationId(range.start + (range.end - range.start) / 2);
                        let s2s = svc.s2s(global, target).expect("same shard");
                        let candidates = states[shard.idx()].lock().unwrap().clone();
                        let (_, local_t) = svc.locate(target).unwrap();
                        let matched = candidates.iter().any(|snap| {
                            fresh.one_to_all(snap.network(), local).profile(local_t)
                                == &s2s.value.profile
                        });
                        if !matched {
                            bad.push(format!(
                                "reader {r}: s2s({global}, {target}) matches no published \
                                 state of {shard}"
                            ));
                        }
                    }
                    bad
                })
            })
            .collect();
        let mut all = Vec::new();
        for handle in readers {
            all.extend(handle.join().expect("reader must not panic"));
        }
        done.store(true, Ordering::Relaxed);
        writer.join().expect("writer must not panic");
        all
    });
    assert!(violations.is_empty(), "{violations:?}");
    // The writer actually published while readers ran.
    let total: u64 = svc.shard_ids().map(|sh| svc.publishes(sh).unwrap()).sum();
    assert!(total > 0, "stress run must observe at least one publish");
}
