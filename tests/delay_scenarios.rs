//! Scenario harness for the fully dynamic delay subsystem (paper §5.1).
//!
//! Drives deterministic random sequences of ~50 interleaved delays and
//! queries against a live [`Network`]. After **every** patch, the invariant
//! under test is the acceptance contract of the dynamic path: the
//! incrementally patched network (`Timetable::patch_delay` +
//! `Routes::repatch` + `TdGraph::repatch`, with the overtaking fallback)
//! must be **query-identical** to a from-scratch `Network::build` of the
//! same timetable — from every source. Queries in between stream through a
//! persistent cached engine and must equal an uncached one.
//!
//! Deterministic companions below the proptest pin down the two update
//! kinds (`Patched` vs `Rebuilt`) and the warm-workspace guarantee across a
//! patch → query cycle.

use proptest::prelude::*;

use best_connections::prelude::*;
use best_connections::timetable::synthetic::city::{generate_city, CityConfig};

/// A random trip: station path (indices into 0..n), start minute, leg
/// durations in minutes, dwell minutes (as in `tests/random_timetables.rs`).
#[derive(Debug, Clone)]
struct TripSpec {
    path: Vec<u8>,
    start_min: u32,
    leg_min: Vec<u16>,
    dwell_min: u8,
}

fn trip_strategy(n: u8) -> impl Strategy<Value = TripSpec> {
    (2usize..=5)
        .prop_flat_map(move |len| {
            (
                prop::collection::vec(0..n, len),
                0u32..(24 * 60),
                prop::collection::vec(1u16..=130, len - 1),
                0u8..=5,
            )
        })
        .prop_map(|(path, start_min, leg_min, dwell_min)| TripSpec {
            path,
            start_min,
            leg_min,
            dwell_min,
        })
}

fn build(transfer_min: &[u8], trips: Vec<TripSpec>) -> Option<Timetable> {
    let mut b = TimetableBuilder::new(Period::DAY);
    for (i, &tm) in transfer_min.iter().enumerate() {
        b.add_named_station(format!("S{i}"), Dur::minutes(tm as u32));
    }
    let mut added = 0;
    for t in trips {
        let mut path: Vec<StationId> = Vec::new();
        for &p in &t.path {
            let s = StationId(p as u32);
            if path.last() != Some(&s) {
                path.push(s);
            }
        }
        if path.len() < 2 {
            continue;
        }
        let legs: Vec<Dur> =
            t.leg_min.iter().take(path.len() - 1).map(|&m| Dur::minutes(m as u32)).collect();
        if b.add_simple_trip(&path, Time(t.start_min * 60), &legs, Dur::minutes(t.dwell_min as u32))
            .is_err()
        {
            return None;
        }
        added += 1;
    }
    if added == 0 {
        return None;
    }
    b.build().ok()
}

/// One step of a scenario: disrupt a train or answer a query.
#[derive(Debug, Clone)]
enum Op {
    Delay { train: u32, hop: u16, delay_min: u16, recover_min: u8 },
    Query { source: u32 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        2 => (0u32..1024, 0u16..4, 1u16..200, 0u8..30).prop_map(
            |(train, hop, delay_min, recover_min)| Op::Delay { train, hop, delay_min, recover_min }
        ),
        3 => (0u32..1024).prop_map(|source| Op::Query { source }),
    ]
}

/// Runs one scenario, asserting patch ≡ rebuild after every delay and
/// cached ≡ uncached on every query. `sources_per_delay` caps how many
/// sources are compared against the rebuilt network after each patch
/// (rotating deterministically so the whole station set is covered over a
/// scenario) — on bigger networks comparing every source every time
/// dominates the runtime without adding coverage.
fn run_scenario(tt: Timetable, ops: Vec<Op>, sources_per_delay: u32) -> Result<(), TestCaseError> {
    let num_trains = tt.num_trains() as u32;
    let n = tt.num_stations() as u32;
    if num_trains == 0 || n == 0 {
        return Ok(());
    }
    let mut rotate = 0u32;
    let mut net = Network::new(tt);
    let cached = ProfileEngine::new().threads(2).with_cache(16);
    let warm = ProfileEngine::new();
    let mut last_gen = net.generation();
    for op in ops {
        match op {
            Op::Delay { train, hop, delay_min, recover_min } => {
                let train = TrainId(train % num_trains);
                let recovery = if recover_min == 0 {
                    Recovery::None
                } else {
                    Recovery::CatchUp { per_hop: Dur::minutes(recover_min as u32) }
                };
                let update = net.apply_delay(train, hop, Dur::minutes(delay_min as u32), recovery);
                if update == DelayUpdate::Unchanged {
                    prop_assert_eq!(net.generation(), last_gen, "no-op must not bump");
                } else {
                    prop_assert!(net.generation() > last_gen, "update must bump the generation");
                }
                last_gen = net.generation();

                // The acceptance contract: bit-identical query results to a
                // from-scratch build of the same (patched) timetable.
                let rebuilt = Network::build(net.timetable());
                let fresh = ProfileEngine::new().threads(2);
                for k in 0..sources_per_delay.min(n) {
                    let s = StationId((rotate + k) % n);
                    let a = warm.one_to_all(&net, s);
                    let b = fresh.one_to_all(&rebuilt, s);
                    prop_assert_eq!(&a, &b, "source {} after {:?} of {:?}", s, update, train);
                }
                rotate = rotate.wrapping_add(sources_per_delay);
            }
            Op::Query { source } => {
                let s = StationId(source % n);
                let hit = cached.one_to_all(&net, s);
                let truth = warm.one_to_all(&net, s);
                prop_assert_eq!(&hit, &truth, "cached query from {}", s);
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    // ~50 interleaved delays and queries on arbitrary small timetables.
    #[test]
    fn patched_network_always_equals_rebuilt(
        transfer_min in prop::collection::vec(0u8..=8, 3..=6),
        trips in prop::collection::vec(trip_strategy(6), 2..=10),
        ops in prop::collection::vec(op_strategy(), 40..=60),
    ) {
        let Some(tt) = build(&transfer_min, trips) else { return Ok(()) };
        run_scenario(tt, ops, 6)?;
    }

    // The same contract on a structured city network, where routes carry
    // many trains and the incremental PLF rewrite actually shares edges.
    #[test]
    fn patched_city_always_equals_rebuilt(
        seed in 0u64..1000,
        ops in prop::collection::vec(op_strategy(), 20..=28),
    ) {
        let tt = generate_city(&CityConfig::sized(12, 2, seed));
        run_scenario(tt, ops, 3)?;
    }
}

/// A two-train line where a small delay preserves FIFO (fast path) and a
/// large one forces overtaking (rebuild path).
fn two_train_line() -> Timetable {
    let mut b = TimetableBuilder::new(Period::DAY);
    let s: Vec<_> = (0..3).map(|i| b.add_named_station(format!("{i}"), Dur::minutes(2))).collect();
    for h in [8, 9] {
        b.add_simple_trip(
            &[s[0], s[1], s[2]],
            Time::hm(h, 0),
            &[Dur::minutes(10), Dur::minutes(10)],
            Dur::ZERO,
        )
        .unwrap();
    }
    b.build().unwrap()
}

#[test]
fn small_delay_takes_the_patch_path_and_matches_rebuild() {
    let mut net = Network::new(two_train_line());
    // +5 min keeps the 08:00 train ahead of the 09:00 one on every hop.
    let update = net.apply_delay(TrainId(0), 0, Dur::minutes(5), Recovery::None);
    assert_eq!(update, DelayUpdate::Patched);
    let rebuilt = Network::build(net.timetable());
    for s in net.station_ids().collect::<Vec<_>>() {
        assert_eq!(
            ProfileEngine::new().one_to_all(&net, s),
            ProfileEngine::new().one_to_all(&rebuilt, s),
            "patched != rebuilt from {s}"
        );
    }
}

#[test]
fn overtaking_delay_takes_the_rebuild_path_and_matches_rebuild() {
    let mut net = Network::new(two_train_line());
    // +75 min moves the 08:00 train to 09:15: it now departs after the
    // 09:00 train but *arrives* after it too on equal legs — that is still
    // FIFO. Delay hop 0 only, with instant recovery, instead: the train
    // departs station 0 at 09:15 but departs station 1 on schedule at
    // 08:10 — its own trip is out of order, which can never stay FIFO
    // against its companion. Use a mid-size delay that lands exactly on
    // the other train's slot: equal departures break FIFO.
    let update = net.apply_delay(TrainId(0), 0, Dur::minutes(60), Recovery::None);
    assert_eq!(update, DelayUpdate::Rebuilt, "equal departures must repartition");
    let rebuilt = Network::build(net.timetable());
    for s in net.station_ids().collect::<Vec<_>>() {
        assert_eq!(
            ProfileEngine::new().one_to_all(&net, s),
            ProfileEngine::new().one_to_all(&rebuilt, s),
            "rebuilt-path network != rebuilt from {s}"
        );
    }
}

#[test]
fn cancelling_a_never_delayed_train_is_unchanged() {
    let mut net = Network::new(two_train_line());
    let g0 = net.generation();
    let before = net.timetable().connections().to_vec();
    assert_eq!(net.apply_cancel(TrainId(0)), DelayUpdate::Unchanged);
    // The feed form agrees, and neither bumps the generation.
    let summary = net.apply_feed(&[DelayEvent::Cancel { train: TrainId(1) }]);
    assert_eq!(summary.events, vec![DelayUpdate::Unchanged]);
    assert!(!summary.changed());
    assert_eq!(net.generation(), g0, "no-op cancels must not invalidate caches");
    assert_eq!(net.timetable().connections(), before.as_slice());
}

#[test]
fn cancel_then_redelay_round_trips() {
    let mut net = Network::new(two_train_line());
    let schedule = net.timetable().connections().to_vec();
    // Delay enough to re-sort buckets (the 08:00 train moves behind the
    // 09:00 one), remember the delayed state.
    assert_ne!(
        net.apply_delay(TrainId(0), 0, Dur::minutes(70), Recovery::None),
        DelayUpdate::Unchanged
    );
    let delayed = net.timetable().connections().to_vec();
    // Cancel restores the schedule exactly…
    assert_ne!(net.apply_cancel(TrainId(0)), DelayUpdate::Unchanged);
    assert_eq!(net.timetable().connections(), schedule.as_slice());
    // …re-announcing the same delay restores the delayed state exactly…
    assert_ne!(
        net.apply_delay(TrainId(0), 0, Dur::minutes(70), Recovery::None),
        DelayUpdate::Unchanged
    );
    assert_eq!(net.timetable().connections(), delayed.as_slice());
    // …and a second cancel round-trips again, with the network still
    // query-identical to a from-scratch build at every step.
    assert_ne!(net.apply_cancel(TrainId(0)), DelayUpdate::Unchanged);
    assert_eq!(net.timetable().connections(), schedule.as_slice());
    let rebuilt = Network::build(net.timetable());
    let engine = ProfileEngine::new();
    for s in net.station_ids().collect::<Vec<_>>() {
        assert_eq!(engine.one_to_all(&net, s), ProfileEngine::new().one_to_all(&rebuilt, s));
    }
}

#[test]
fn cancellation_past_midnight_stays_periodic() {
    let mut b = TimetableBuilder::new(Period::DAY);
    let a = b.add_named_station("A", Dur::ZERO);
    let c = b.add_named_station("B", Dur::ZERO);
    b.add_simple_trip(&[a, c], Time::hm(23, 50), &[Dur::minutes(20)], Dur::ZERO).unwrap();
    let mut net = Network::new(b.build().unwrap());
    // +30 min wraps the departure past midnight to 00:20 (period-local).
    net.apply_delay(TrainId(0), 0, Dur::minutes(30), Recovery::None);
    assert_eq!(net.timetable().conn(a)[0].dep, Time::hm(0, 20));
    // The cancellation walks it back across the period boundary: the
    // restored departure is the period-local schedule time, not 24:20.
    assert_ne!(net.apply_cancel(TrainId(0)), DelayUpdate::Unchanged);
    let conn = &net.timetable().conn(a)[0];
    assert_eq!(conn.dep, Time::hm(23, 50));
    assert_eq!(conn.dur(), Dur::minutes(20));
    assert!(net.timetable().period().contains(conn.dep));
    // And the wrap-around profile agrees with a rebuild.
    let rebuilt = Network::build(net.timetable());
    assert_eq!(
        ProfileEngine::new().one_to_all(&net, a),
        ProfileEngine::new().one_to_all(&rebuilt, a)
    );
}

#[test]
fn workspaces_stay_warm_across_a_patch_query_cycle() {
    let mut net = Network::new(two_train_line());
    let engine = ProfileEngine::new().threads(2);
    let sources: Vec<StationId> = net.station_ids().collect();
    for &s in &sources {
        let _ = engine.one_to_all(&net, s);
    }
    let warm = engine.workspace_grow_events();
    assert!(warm > 0, "warm-up must have sized the workspaces");
    // Patch (fast path: graph dimensions unchanged) → query: zero growth.
    assert_eq!(
        net.apply_delay(TrainId(0), 1, Dur::minutes(3), Recovery::None),
        DelayUpdate::Patched
    );
    for &s in &sources {
        let _ = engine.one_to_all(&net, s);
    }
    assert_eq!(engine.workspace_grow_events(), warm, "patch → query must not allocate");
}

#[test]
fn cached_repeat_is_identical_and_searchless_until_a_delay() {
    let mut net = Network::new(two_train_line());
    let engine = ProfileEngine::new().with_cache(8);
    let s = StationId(0);
    let first = engine.one_to_all_with_stats(&net, s);
    let repeat = engine.one_to_all_with_stats(&net, s);
    assert!(std::sync::Arc::ptr_eq(&first.profiles, &repeat.profiles), "hit shares the set");
    assert_eq!(repeat.stats.settled + repeat.stats.relaxed, 0, "no search on a hit");
    assert_eq!(repeat.stats.cache_hits, 1);
    net.apply_delay(TrainId(1), 0, Dur::minutes(4), Recovery::None);
    let after = engine.one_to_all_with_stats(&net, s);
    assert_eq!(after.stats.cache_misses, 1, "generation bump must invalidate");
    assert!(after.stats.settled > 0);
}
