//! Scenario harness for **batched** delay feeds (the server scenario of
//! §5, under GTFS-RT-style streams).
//!
//! Drives deterministic random sequences of feeds — each a batch of delay
//! *and cancellation* events, with events piling up on the same trains and
//! mid-feed overtaking — against a live [`Network`] via
//! [`Network::apply_feed`]. After **every** feed, the acceptance contract
//! of the batched dynamic path is asserted:
//!
//! * the patched network is **query-identical** to a from-scratch
//!   `Network::build` of the same timetable,
//! * a feed of N events costs **exactly one** generation bump (zero when
//!   its net effect is nil), and
//! * each touched route is rewritten at most once
//!   (`repatched + refit ≤ touched`, every count from the summary).
//!
//! Deterministic companions below the proptest pin down the 100-event
//! acceptance criterion, feed ≡ sequential-patch equivalence, the scoped
//! overtaking fallback, and cache invalidation (once per feed, not per
//! event).

use proptest::prelude::*;

use best_connections::prelude::*;
use best_connections::timetable::synthetic::city::{generate_city, CityConfig};

/// A random trip, as in `tests/delay_scenarios.rs`.
#[derive(Debug, Clone)]
struct TripSpec {
    path: Vec<u8>,
    start_min: u32,
    leg_min: Vec<u16>,
    dwell_min: u8,
}

fn trip_strategy(n: u8) -> impl Strategy<Value = TripSpec> {
    (2usize..=5)
        .prop_flat_map(move |len| {
            (
                prop::collection::vec(0..n, len),
                0u32..(24 * 60),
                prop::collection::vec(1u16..=130, len - 1),
                0u8..=5,
            )
        })
        .prop_map(|(path, start_min, leg_min, dwell_min)| TripSpec {
            path,
            start_min,
            leg_min,
            dwell_min,
        })
}

fn build(transfer_min: &[u8], trips: Vec<TripSpec>) -> Option<Timetable> {
    let mut b = TimetableBuilder::new(Period::DAY);
    for (i, &tm) in transfer_min.iter().enumerate() {
        b.add_named_station(format!("S{i}"), Dur::minutes(tm as u32));
    }
    let mut added = 0;
    for t in trips {
        let mut path: Vec<StationId> = Vec::new();
        for &p in &t.path {
            let s = StationId(p as u32);
            if path.last() != Some(&s) {
                path.push(s);
            }
        }
        if path.len() < 2 {
            continue;
        }
        let legs: Vec<Dur> =
            t.leg_min.iter().take(path.len() - 1).map(|&m| Dur::minutes(m as u32)).collect();
        if b.add_simple_trip(&path, Time(t.start_min * 60), &legs, Dur::minutes(t.dwell_min as u32))
            .is_err()
        {
            return None;
        }
        added += 1;
    }
    if added == 0 {
        return None;
    }
    b.build().ok()
}

/// One raw feed event; train ids are reduced modulo the train count at run
/// time so overlapping (same-train) events occur often.
#[derive(Debug, Clone)]
enum RawEvent {
    Delay { train: u32, hop: u16, delay_min: u16, recover_min: u8 },
    Cancel { train: u32 },
}

fn event_strategy() -> impl Strategy<Value = RawEvent> {
    prop_oneof![
        3 => (0u32..1024, 0u16..4, 1u16..200, 0u8..30).prop_map(
            |(train, hop, delay_min, recover_min)| RawEvent::Delay {
                train, hop, delay_min, recover_min
            }
        ),
        1 => (0u32..1024).prop_map(|train| RawEvent::Cancel { train }),
    ]
}

/// One step of a scenario: apply a whole feed, or answer a cached query.
#[derive(Debug, Clone)]
enum Op {
    Feed(Vec<RawEvent>),
    Query { source: u32 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        2 => prop::collection::vec(event_strategy(), 1..=12).prop_map(Op::Feed),
        1 => (0u32..1024).prop_map(|source| Op::Query { source }),
    ]
}

fn to_events(raw: &[RawEvent], num_trains: u32) -> Vec<DelayEvent> {
    raw.iter()
        .map(|e| match *e {
            RawEvent::Delay { train, hop, delay_min, recover_min } => DelayEvent::Delay {
                train: TrainId(train % num_trains),
                from_hop: hop,
                delay: Dur::minutes(delay_min as u32),
                recovery: if recover_min == 0 {
                    Recovery::None
                } else {
                    Recovery::CatchUp { per_hop: Dur::minutes(recover_min as u32) }
                },
            },
            RawEvent::Cancel { train } => DelayEvent::Cancel { train: TrainId(train % num_trains) },
        })
        .collect()
}

/// Runs one scenario; see the module docs for the invariants.
fn run_scenario(tt: Timetable, ops: Vec<Op>, sources_per_feed: u32) -> Result<(), TestCaseError> {
    let num_trains = tt.num_trains() as u32;
    let n = tt.num_stations() as u32;
    if num_trains == 0 || n == 0 {
        return Ok(());
    }
    let mut rotate = 0u32;
    let mut net = Network::new(tt);
    let cached = ProfileEngine::new().threads(2).with_cache(16);
    let warm = ProfileEngine::new();
    for op in ops {
        match op {
            Op::Feed(raw) => {
                let events = to_events(&raw, num_trains);
                let gen_before = net.generation();
                let summary = net.apply_feed(&events);
                // One generation bump per feed, zero when the net effect
                // was nil — never one per event.
                let expected = u64::from(summary.changed());
                prop_assert_eq!(
                    net.generation(),
                    gen_before + expected,
                    "{} events must cost {} bumps",
                    events.len(),
                    expected
                );
                prop_assert_eq!(summary.events.len(), events.len());
                // Each touched route is serviced at most once.
                prop_assert!(
                    summary.repatched_routes + summary.refit_routes <= summary.touched_routes,
                    "summary {:?} rewrites a route twice",
                    summary
                );
                if !summary.changed() {
                    prop_assert!(summary.events.iter().all(|&u| u == DelayUpdate::Unchanged));
                }

                // The acceptance contract: bit-identical query results to a
                // from-scratch build of the same (patched) timetable.
                let rebuilt = Network::build(net.timetable());
                let fresh = ProfileEngine::new().threads(2);
                for k in 0..sources_per_feed.min(n) {
                    let s = StationId((rotate + k) % n);
                    let a = warm.one_to_all(&net, s);
                    let b = fresh.one_to_all(&rebuilt, s);
                    prop_assert_eq!(&a, &b, "source {} after feed {:?}", s, summary.events);
                }
                rotate = rotate.wrapping_add(sources_per_feed);
            }
            Op::Query { source } => {
                let s = StationId(source % n);
                let hit = cached.one_to_all(&net, s);
                let truth = warm.one_to_all(&net, s);
                prop_assert_eq!(&hit, &truth, "cached query from {}", s);
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    // Random feeds on arbitrary small timetables: delays, cancellations,
    // several events per train, mid-feed overtaking.
    #[test]
    fn fed_network_always_equals_rebuilt(
        transfer_min in prop::collection::vec(0u8..=8, 3..=6),
        trips in prop::collection::vec(trip_strategy(6), 2..=10),
        ops in prop::collection::vec(op_strategy(), 8..=14),
    ) {
        let Some(tt) = build(&transfer_min, trips) else { return Ok(()) };
        run_scenario(tt, ops, 6)?;
    }

    // The same contract on a structured city network, where routes carry
    // many trains and the multi-route repatch actually coalesces work.
    #[test]
    fn fed_city_always_equals_rebuilt(
        seed in 0u64..1000,
        ops in prop::collection::vec(op_strategy(), 5..=8),
    ) {
        let tt = generate_city(&CityConfig::sized(12, 2, seed));
        run_scenario(tt, ops, 3)?;
    }

    // The column-scoped incremental refresh is entry-for-entry identical
    // to rebuilding the table from scratch, across arbitrary feed streams
    // (including net-nil batches and overtaking rebuilds).
    #[test]
    fn column_scoped_refresh_equals_rebuild(
        transfer_min in prop::collection::vec(0u8..=8, 4..=6),
        trips in prop::collection::vec(trip_strategy(6), 3..=10),
        feeds in prop::collection::vec(
            prop::collection::vec(event_strategy(), 1..=8), 1..=4),
    ) {
        let Some(tt) = build(&transfer_min, trips) else { return Ok(()) };
        let num_trains = tt.num_trains() as u32;
        let mut net = Network::new(tt);
        let mut table = DistanceTable::build(&net, &TransferSelection::Fraction(0.6));
        if table.is_empty() { return Ok(()) }
        for raw in feeds {
            let events = to_events(&raw, num_trains);
            net.apply_feed(&events);
            table.refresh(&net).expect("same epoch, always refreshable");
            let rebuilt = DistanceTable::build_for(&net, table.stations().to_vec());
            for &a in table.stations() {
                for &b in table.stations() {
                    prop_assert_eq!(
                        table.profile(a, b),
                        rebuilt.profile(a, b),
                        "D({}, {}) diverged from a rebuild",
                        a,
                        b
                    );
                }
            }
        }
    }
}

/// A three-train, two-route network for the deterministic companions.
fn two_route_net() -> Timetable {
    let mut b = TimetableBuilder::new(Period::DAY);
    let s: Vec<_> = (0..4).map(|i| b.add_named_station(format!("{i}"), Dur::minutes(2))).collect();
    for h in [8, 9] {
        b.add_simple_trip(
            &[s[0], s[1], s[2]],
            Time::hm(h, 0),
            &[Dur::minutes(10), Dur::minutes(10)],
            Dur::ZERO,
        )
        .unwrap();
    }
    b.add_simple_trip(&[s[3], s[1]], Time::hm(8, 30), &[Dur::minutes(5)], Dur::ZERO).unwrap();
    b.build().unwrap()
}

#[test]
fn hundred_event_feed_costs_one_bump_and_one_repatch_per_route() {
    // The acceptance criterion: a 100-event feed performs one generation
    // bump and at most one repatch per touched route.
    let mut net = Network::new(two_route_net());
    let events: Vec<DelayEvent> = (0..100)
        .map(|i| DelayEvent::Delay {
            train: TrainId(i % 3),
            from_hop: (i % 2) as u16,
            delay: Dur::minutes(1), // 100 small delays pile up per train
            recovery: Recovery::None,
        })
        .collect();
    let g0 = net.generation();
    let summary = net.apply_feed(&events);
    assert!(summary.changed());
    assert_eq!(net.generation(), g0 + 1, "100 events must cost exactly one bump");
    assert_eq!(summary.events.len(), 100);
    // Both routes are touched, and each was serviced exactly once.
    assert_eq!(summary.touched_routes, 2);
    assert_eq!(summary.repatched_routes + summary.refit_routes, summary.touched_routes);
    // Query-identical to a rebuild of the patched timetable.
    let rebuilt = Network::build(net.timetable());
    let engine = ProfileEngine::new();
    for s in net.station_ids().collect::<Vec<_>>() {
        assert_eq!(
            engine.one_to_all(&net, s),
            ProfileEngine::new().one_to_all(&rebuilt, s),
            "fed != rebuilt from {s}"
        );
    }
}

#[test]
fn feed_equals_sequential_apply_delay_calls() {
    let tt = two_route_net();
    let mut batched = Network::new(tt.clone());
    let mut sequential = Network::new(tt);
    let events =
        [(TrainId(0), 0u16, 5u32), (TrainId(2), 0, 12), (TrainId(0), 1, 3), (TrainId(1), 0, 7)];
    let feed: Vec<DelayEvent> = events
        .iter()
        .map(|&(train, from_hop, min)| DelayEvent::Delay {
            train,
            from_hop,
            delay: Dur::minutes(min),
            recovery: Recovery::None,
        })
        .collect();
    let summary = batched.apply_feed(&feed);
    for &(train, from_hop, min) in &events {
        sequential.apply_delay(train, from_hop, Dur::minutes(min), Recovery::None);
    }
    assert_eq!(batched.timetable().connections(), sequential.timetable().connections());
    assert!(summary.events.iter().all(|&u| u == DelayUpdate::Patched));
    // The batch spent one generation where the sequence spent four.
    assert_eq!(batched.generation(), 1);
    assert_eq!(sequential.generation(), 4);
    let engine = ProfileEngine::new();
    for s in batched.station_ids().collect::<Vec<_>>() {
        assert_eq!(engine.one_to_all(&batched, s), ProfileEngine::new().one_to_all(&sequential, s));
    }
}

#[test]
fn mid_feed_overtaking_scopes_the_fallback_to_the_offending_route() {
    let mut net = Network::new(two_route_net());
    let route_b = net.routes().route_of(TrainId(2));
    let trains_b = net.routes().route(route_b).trains.clone();
    // Train 0 lands exactly on train 1's slot (equal departures break
    // FIFO on their shared route); train 2's route stays FIFO.
    let summary = net.apply_feed(&[
        DelayEvent::Delay {
            train: TrainId(0),
            from_hop: 0,
            delay: Dur::minutes(60),
            recovery: Recovery::None,
        },
        DelayEvent::Delay {
            train: TrainId(2),
            from_hop: 0,
            delay: Dur::minutes(4),
            recovery: Recovery::None,
        },
    ]);
    assert_eq!(summary.events, vec![DelayUpdate::Rebuilt, DelayUpdate::Patched]);
    assert!(summary.rebuilt());
    assert_eq!(summary.refit_routes, 1, "only the offending route is refit");
    // The bystander route kept its id and trains through the fallback.
    assert_eq!(net.routes().route(route_b).trains, trains_b);
    // The offending route was split: its two trains no longer share one.
    assert_ne!(net.routes().route_of(TrainId(0)), net.routes().route_of(TrainId(1)));
    // And the result is still query-identical to a rebuild.
    let rebuilt = Network::build(net.timetable());
    let engine = ProfileEngine::new();
    for s in net.station_ids().collect::<Vec<_>>() {
        assert_eq!(engine.one_to_all(&net, s), ProfileEngine::new().one_to_all(&rebuilt, s));
    }
}

#[test]
fn touched_since_reports_the_union_and_detects_log_overflow() {
    let mut net = Network::new(two_route_net());
    let g0 = net.generation();
    assert_eq!(net.touched_since(g0), Some(vec![]), "nothing changed yet");
    net.apply_delay(TrainId(0), 0, Dur::minutes(3), Recovery::None);
    net.apply_delay(TrainId(2), 0, Dur::minutes(3), Recovery::None);
    let touched = net.touched_since(g0).expect("two feeds back is logged");
    // Train 0 departs stations 0 and 1; train 2 departs station 3.
    assert_eq!(touched, vec![StationId(0), StationId(1), StationId(3)]);
    assert_eq!(net.touched_since(net.generation()), Some(vec![]));
    // Push the first entries out of the bounded log: a consumer still on
    // g0 must be told the history is gone (None), never a partial union.
    for i in 0..70u32 {
        net.apply_delay(TrainId(0), 0, Dur::minutes(1 + (i % 3)), Recovery::None);
    }
    assert_eq!(net.touched_since(g0), None, "overflowed log must not under-report");
    assert!(net.touched_since(net.generation() - 1).is_some(), "recent history still covered");
}

#[test]
fn refresh_survives_a_log_overflow_with_a_full_recompute() {
    let mut net = Network::new(two_route_net());
    let mut table = DistanceTable::build_for(&net, vec![StationId(0), StationId(1), StationId(2)]);
    // 70 single-delay feeds: far more than the network's touched-station
    // log retains, so the refresh cannot know which rows are safe and must
    // recompute all of them — and still match a from-scratch build.
    for i in 0..70u32 {
        net.apply_delay(TrainId(i % 3), 0, Dur::minutes(1), Recovery::None);
    }
    let rows = table.refresh(&net).expect("same epoch");
    assert_eq!(rows, table.len(), "history gap must recompute every row");
    let rebuilt = DistanceTable::build_for(&net, table.stations().to_vec());
    for &a in table.stations() {
        for &b in table.stations() {
            assert_eq!(table.profile(a, b), rebuilt.profile(a, b), "{a}→{b}");
        }
    }
}

#[test]
fn accumulated_refit_splits_heal_on_a_later_fallback() {
    // Routes only ever split under the scoped fallback; the heal re-runs a
    // full partition once enough splits accumulate, re-merging trains whose
    // overtaking delays were since cancelled.
    let mut b = TimetableBuilder::new(Period::DAY);
    let x = b.add_named_station("X", Dur::ZERO);
    let y = b.add_named_station("Y", Dur::ZERO);
    let c = b.add_named_station("C", Dur::ZERO);
    let d = b.add_named_station("D", Dur::ZERO);
    // Pair route: trains 0/1 on X→Y. Bulk route: trains 2..=19 on C→D.
    for h in [8, 9] {
        b.add_simple_trip(&[x, y], Time::hm(h, 0), &[Dur::minutes(10)], Dur::ZERO).unwrap();
    }
    for i in 0..18u32 {
        b.add_simple_trip(
            &[c, d],
            Time::hm(9, 0) + Dur::minutes(10 * i),
            &[Dur::minutes(5)],
            Dur::ZERO,
        )
        .unwrap();
    }
    let mut net = Network::new(b.build().unwrap());

    // Feed 1: overtake inside the pair route — split, too small to heal.
    let s1 = net.apply_feed(&[DelayEvent::Delay {
        train: TrainId(0),
        from_hop: 0,
        delay: Dur::minutes(60),
        recovery: Recovery::None,
    }]);
    assert!(s1.rebuilt());
    assert_ne!(net.routes().route_of(TrainId(0)), net.routes().route_of(TrainId(1)));

    // Feed 2: cancel it — schedule restored, but the split persists (the
    // patched path never re-partitions).
    assert!(net.apply_feed(&[DelayEvent::Cancel { train: TrainId(0) }]).changed());
    assert_ne!(
        net.routes().route_of(TrainId(0)),
        net.routes().route_of(TrainId(1)),
        "cancel alone must not repartition"
    );

    // Feed 3: pile 16 bulk-route trains onto one slot — a mass split that
    // crosses the heal threshold, so the fallback runs a full partition…
    let events: Vec<DelayEvent> = (2..18u32)
        .map(|t| {
            let dep_min = 9 * 60 + 10 * (t - 2);
            DelayEvent::Delay {
                train: TrainId(t),
                from_hop: 0,
                delay: Dur::minutes(20 * 60 - dep_min),
                recovery: Recovery::None,
            }
        })
        .collect();
    let s3 = net.apply_feed(&events);
    assert!(s3.rebuilt());
    // …which re-merges the long-since-recovered pair route.
    assert_eq!(
        net.routes().route_of(TrainId(0)),
        net.routes().route_of(TrainId(1)),
        "the heal must re-coalesce cancelled splits"
    );
    // And the healed network still answers like a from-scratch build.
    let rebuilt = Network::build(net.timetable());
    let engine = ProfileEngine::new();
    for s in net.station_ids().collect::<Vec<_>>() {
        assert_eq!(engine.one_to_all(&net, s), ProfileEngine::new().one_to_all(&rebuilt, s));
    }
}

#[test]
fn feed_invalidates_the_cache_once() {
    let mut net = Network::new(two_route_net());
    let engine = ProfileEngine::new().with_cache(8);
    let s = StationId(0);
    let _ = engine.one_to_all(&net, s);
    let summary = net.apply_feed(&[
        DelayEvent::Delay {
            train: TrainId(0),
            from_hop: 0,
            delay: Dur::minutes(3),
            recovery: Recovery::None,
        },
        DelayEvent::Delay {
            train: TrainId(1),
            from_hop: 0,
            delay: Dur::minutes(3),
            recovery: Recovery::None,
        },
    ]);
    assert!(summary.changed());
    // First post-feed query misses (one new generation), the second hits:
    // the whole feed cost one invalidation.
    let after = engine.one_to_all_with_stats(&net, s);
    assert_eq!(after.stats.cache_misses, 1);
    let again = engine.one_to_all_with_stats(&net, s);
    assert_eq!(again.stats.cache_hits, 1);
}

#[test]
fn workspaces_stay_warm_across_a_feed() {
    let mut net = Network::new(two_route_net());
    let engine = ProfileEngine::new().threads(2);
    let sources: Vec<StationId> = net.station_ids().collect();
    for &s in &sources {
        let _ = engine.one_to_all(&net, s);
    }
    let warm = engine.workspace_grow_events();
    // A FIFO-preserving feed keeps graph dimensions: zero further growth.
    let summary = net.apply_feed(&[
        DelayEvent::Delay {
            train: TrainId(0),
            from_hop: 1,
            delay: Dur::minutes(3),
            recovery: Recovery::None,
        },
        DelayEvent::Delay {
            train: TrainId(2),
            from_hop: 0,
            delay: Dur::minutes(2),
            recovery: Recovery::None,
        },
    ]);
    assert!(!summary.rebuilt());
    for &s in &sources {
        let _ = engine.one_to_all(&net, s);
    }
    assert_eq!(engine.workspace_grow_events(), warm, "feed → query must not allocate");
}
