//! Property: [`Timetable::for_day`] is exactly "rebuild the timetable from
//! scratch keeping only the active trips".
//!
//! The filter path under test slices connections out of the *built*
//! timetable and re-densifies train ids. The reference path here is
//! genuinely different: it goes back to the trip specifications and feeds
//! only the active ones through a fresh [`TimetableBuilder`] — builder
//! validation, sorting and bucket layout all re-run from nothing. The two
//! must agree connection-for-connection and query-for-query (sequential
//! SPCS profiles from every station, via the conncheck reference engine).

use proptest::prelude::*;

use best_connections::prelude::*;
use pt_bench::conncheck::calendar_check;

/// One generated trip: a station path with per-leg durations.
#[derive(Debug, Clone)]
struct TripSpec {
    path: Vec<StationId>,
    start: Time,
    legs: Vec<Dur>,
}

/// Deterministic trip specs over `n` stations (simple congruences — the
/// point is variety, not realism: branching paths, shared stations,
/// different speeds and start times).
fn trip_specs(n: u32, trips: usize, seed: u64) -> Vec<TripSpec> {
    (0..trips)
        .map(|k| {
            let k = k as u64;
            let hops = 2 + ((seed ^ k) % 3) as u32; // 2..=4 legs
            let first = ((seed.wrapping_mul(31) + k * 7) % u64::from(n)) as u32;
            let stride = 1 + ((seed >> 3 ^ k) % u64::from(n - 1)) as u32;
            let path: Vec<StationId> =
                (0..=hops).map(|i| StationId((first + i * stride) % n)).collect();
            let start = Time::hm(5 + ((k * 3 + seed) % 18) as u32, ((k * 17) % 60) as u32);
            let legs: Vec<Dur> = (0..hops)
                .map(|i| Dur::minutes(4 + ((seed ^ (k + u64::from(i))) % 26) as u32))
                .collect();
            TripSpec { path, start, legs }
        })
        .filter(|t| {
            // The builder rejects self-loop hops; keep only simple paths.
            t.path.windows(2).all(|w| w[0] != w[1])
        })
        .collect()
}

fn build_from(n: u32, specs: &[TripSpec]) -> Timetable {
    let mut b = TimetableBuilder::new(Period::DAY);
    for i in 0..n {
        b.add_named_station(format!("S{i}"), Dur::minutes(2 + i % 4));
    }
    for spec in specs {
        b.add_simple_trip(&spec.path, spec.start, &spec.legs, Dur::minutes(1))
            .expect("generated trips are valid");
    }
    b.build().expect("generated timetables are valid")
}

/// The battery calendar: weekday / weekend / summer-with-exceptions
/// services plus unassigned (daily) trains, striped by train id.
fn striped_calendar(num_trains: usize) -> ServiceCalendar {
    let date = |y, m, d| Date::new(y, m, d).unwrap();
    let mut cal = ServiceCalendar::new();
    let weekday = cal.add_service(ServicePattern::weekdays(date(2026, 1, 1), date(2026, 12, 31)));
    let weekend = cal.add_service(ServicePattern::weekends(date(2026, 1, 1), date(2026, 12, 31)));
    let summer = cal.add_service(
        ServicePattern::daily(date(2026, 6, 1), date(2026, 8, 31))
            .with_removed(&[date(2026, 7, 4)])
            .with_added(&[date(2026, 12, 24)]),
    );
    for t in 0..num_trains as u32 {
        match t % 4 {
            0 => cal.assign(TrainId(t), weekday).unwrap(),
            1 => cal.assign(TrainId(t), weekend).unwrap(),
            2 => cal.assign(TrainId(t), summer).unwrap(),
            _ => {}
        }
    }
    cal
}

/// The dates the stripes disagree on: weekday vs weekend vs summer range
/// vs the removed holiday vs the out-of-season added exception.
fn battery_dates() -> Vec<Date> {
    [
        (2026, 8, 8),   // Saturday in summer
        (2026, 8, 10),  // Monday in summer
        (2026, 7, 4),   // holiday removed from the summer service
        (2026, 12, 24), // winter Thursday added to the summer service
        (2026, 3, 1),   // Sunday outside the summer range
        (2025, 6, 15),  // before every service's range
    ]
    .into_iter()
    .map(|(y, m, d)| Date::new(y, m, d).unwrap())
    .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    // for_day == from-scratch rebuild of only the active trips, for every
    // battery date: same connections, same profiles from every station.
    #[test]
    fn for_day_equals_filtered_rebuild(
        n in 4u32..=9,
        trips in 4usize..=12,
        seed in 0u64..10_000,
    ) {
        let specs = trip_specs(n, trips, seed);
        prop_assert!(!specs.is_empty());
        let full = build_from(n, &specs);
        let cal = striped_calendar(full.num_trains());

        for date in battery_dates() {
            let day = full.for_day(&cal, date).expect("valid date");

            // Reference: only the active trips, through a fresh builder.
            // Trips are added in original train order, so dense day-local
            // ids must line up with the builder's assignment order.
            let active_specs: Vec<TripSpec> = specs
                .iter()
                .enumerate()
                .filter(|(i, _)| cal.runs_on(TrainId(*i as u32), date))
                .map(|(_, s)| s.clone())
                .collect();
            let reference = build_from(n, &active_specs);

            prop_assert_eq!(day.timetable.num_trains(), reference.num_trains());
            prop_assert_eq!(day.timetable.connections(), reference.connections());
            prop_assert_eq!(
                day.trains.len() + day.dropped_trains,
                full.num_trains()
            );
            // The remap is consistent both ways.
            for (new, &old) in day.trains.iter().enumerate() {
                prop_assert_eq!(day.day_train(old), Some(TrainId(new as u32)));
                prop_assert_eq!(day.original_train(TrainId(new as u32)), Some(old));
            }

            // Query equivalence: sequential SPCS from every station.
            let day_net = Network::build(&day.timetable);
            let ref_net = Network::build(&reference);
            let engine = ProfileEngine::new();
            for s in day_net.station_ids() {
                prop_assert_eq!(
                    engine.one_to_all(&day_net, s),
                    engine.one_to_all(&ref_net, s),
                    "profiles diverge from {} on {}", s, date
                );
            }
        }
    }

    // The full conncheck calendar battery (independent weekday algorithm,
    // filter restated from scratch, time-query cross-validation) stays
    // clean on generated timetables, pristine and after a live feed.
    #[test]
    fn conncheck_calendar_battery_is_clean(
        n in 5u32..=9,
        trips in 5usize..=10,
        seed in 0u64..10_000,
    ) {
        let specs = trip_specs(n, trips, seed);
        prop_assert!(!specs.is_empty());
        let full = build_from(n, &specs);
        let sources: Vec<StationId> = (0..n.min(4)).map(StationId).collect();
        let departures = [Time::hm(7, 30), Time::hm(23, 50)];

        let net = Network::build(&full);
        let pristine = calendar_check("gen", &net, &sources, &departures);
        prop_assert!(pristine.is_clean(), "pristine: {:?}", pristine.mismatches);

        // A delayed dataset's day filters the *delayed* connections: patch
        // a feed into the full timetable, then re-run the whole battery.
        let mut fed = net.clone();
        let num_trains = full.num_trains() as u32;
        fed.apply_feed(&[
            DelayEvent::Delay {
                train: TrainId(seed as u32 % num_trains),
                from_hop: 0,
                delay: Dur::minutes(9),
                recovery: Recovery::None,
            },
            DelayEvent::Cancel { train: TrainId((seed as u32 + 1) % num_trains) },
        ]);
        let after = calendar_check("gen+feed", &fed, &sources, &departures);
        prop_assert!(after.is_clean(), "after feed: {:?}", after.mismatches);
    }
}
