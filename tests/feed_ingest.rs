//! The decoder's quarantine contract, end to end: malformed input is a
//! *typed error with a stable kind label* — never a panic, never a dropped
//! driver — and well-formed input survives an encode/decode round trip on
//! both wire shapes (CSV and JSON lines).

use proptest::prelude::*;

use best_connections::feed::{
    encode_csv, encode_json, FeedDecoder, FlakySource, Quarantine, RecordedFeed, SourceError,
};
use best_connections::prelude::*;
use best_connections::timetable::synthetic::presets::all_presets;

/// A decoder validating against a 3-shard roster of 8 trains each.
fn roster_decoder() -> FeedDecoder {
    FeedDecoder::with_roster(vec![8, 8, 8])
}

/// Every quarantine kind, exercised by at least one hand-written line.
#[test]
fn malformed_battery_has_stable_kinds() {
    let dec = roster_decoder();
    let battery: &[(&str, &str)] = &[
        // truncated: fields missing for the kind
        ("08:00:00,0,delay,1,0", "truncated"),
        ("08:00:00,0,cancel", "truncated"),
        ("08:00:00", "truncated"),
        // bad_time: not a clock reading
        ("8am,0,delay,1,0,60,0", "bad_time"),
        ("25:99:00,0,delay,1,0,60,0", "bad_time"),
        ("99:00:00,0,cancel,1", "bad_time"),
        ("::,0,cancel,1", "bad_time"),
        // bad_field: numeric fields that aren't
        ("08:00:00,zero,delay,1,0,60,0", "bad_field"),
        ("08:00:00,0,delay,one,0,60,0", "bad_field"),
        ("08:00:00,0,delay,1,x,60,0", "bad_field"),
        ("08:00:00,0,delay,1,0,-60,0", "bad_field"),
        // unknown_kind
        ("08:00:00,0,detour,1,0,60,0", "unknown_kind"),
        ("08:00:00,0,DELAY,1,0,60,0", "unknown_kind"),
        // roster violations
        ("08:00:00,7,cancel,1", "unknown_shard"),
        ("08:00:00,2,cancel,8", "unknown_train"),
        ("08:00:00,0,delay,99,0,60,0", "unknown_train"),
        // bad_json: structurally broken JSON lines
        ("{\"time\":\"08:00:00\"", "bad_json"),
        ("{time: 1}", "bad_json"),
        ("{\"time\":\"08:00:00\",}", "bad_json"),
        ("{\"time\":\"08:00:00\"} trailing", "bad_json"),
    ];
    for (line, want) in battery {
        match dec.decode_line(line) {
            Err(e) => assert_eq!(&e.kind(), want, "line {line:?} → {e}"),
            Ok(got) => panic!("line {line:?} decoded as {got:?}, expected {want}"),
        }
    }
    // Sanity: each kind in the battery is a real counter label.
    let mut q = Quarantine::default();
    for (i, (line, _)) in battery.iter().enumerate() {
        q.push(i as u64, line, dec.decode_line(line).unwrap_err());
    }
    assert_eq!(q.total, battery.len() as u64);
    for kind in [
        "truncated",
        "bad_time",
        "bad_field",
        "unknown_kind",
        "unknown_shard",
        "unknown_train",
        "bad_json",
    ] {
        assert!(q.count(kind) > 0, "battery never hit {kind}");
    }
}

#[test]
fn blanks_and_comments_are_skipped_not_quarantined() {
    let dec = roster_decoder();
    for line in ["", "   ", "\t", "# a comment", "  # indented comment"] {
        assert_eq!(dec.decode_line(line), Ok(None), "line {line:?}");
    }
}

/// A valid event for round-trip and mutation fuzzing, derived from a seed.
fn event_from(seed: u64) -> WireEvent {
    let train = TrainId((seed % 8) as u32);
    let event = if seed.is_multiple_of(3) {
        DelayEvent::Cancel { train }
    } else {
        DelayEvent::Delay {
            train,
            from_hop: ((seed >> 8) % 12) as u16,
            delay: Dur(60 + (seed % 3600) as u32),
            recovery: if seed.is_multiple_of(2) {
                Recovery::None
            } else {
                Recovery::CatchUp { per_hop: Dur(1 + (seed % 300) as u32) }
            },
        }
    };
    WireEvent {
        time: Time(((seed >> 4) % (48 * 3600)) as u32),
        shard: ShardId(((seed >> 2) % 3) as u32),
        event,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    // encode → decode is the identity, on both wire shapes.
    #[test]
    fn round_trip_csv_and_json(seed in 0u64..u64::MAX) {
        let dec = roster_decoder();
        let ev = event_from(seed);
        for line in [encode_csv(&ev), encode_json(&ev)] {
            match dec.decode_line(&line) {
                Ok(Some(back)) => prop_assert_eq!(back, ev, "via {}", line),
                other => prop_assert!(false, "line {:?} decoded as {:?}", line, other),
            }
        }
    }

    // Mutation fuzz: truncating a valid line anywhere, or stomping one
    // byte, must yield Ok or a typed Err — the decoder must not panic and
    // must not loop. (A mutated line *may* still decode; that's fine.)
    #[test]
    fn decoder_survives_truncations_and_bitflips(seed in 0u64..u64::MAX) {
        let dec = roster_decoder();
        let ev = event_from(seed);
        for line in [encode_csv(&ev), encode_json(&ev)] {
            for cut in 0..=line.len() {
                let _ = dec.decode_line(&line[..cut]);
            }
            let bytes = line.as_bytes();
            for pos in 0..bytes.len() {
                let mut mutated = bytes.to_vec();
                mutated[pos] = (seed >> (pos % 56)) as u8;
                let _ = dec.decode_line(&String::from_utf8_lossy(&mutated));
            }
        }
    }

    // Garbage fuzz: arbitrary byte soup (including unicode salvage from
    // lossy conversion) never panics the decoder.
    #[test]
    fn decoder_survives_arbitrary_bytes(seed in 0u64..u64::MAX, len in 0usize..120) {
        let dec = roster_decoder();
        let mut x = seed | 1;
        let bytes: Vec<u8> = (0..len)
            .map(|_| {
                // xorshift64 — cheap deterministic byte soup.
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect();
        let _ = dec.decode_line(&String::from_utf8_lossy(&bytes));
        // A leading '{' forces the JSON path; a leading digit the CSV path.
        let _ = dec.decode_line(&format!("{{{}", String::from_utf8_lossy(&bytes)));
        let _ = dec.decode_line(&format!("0{}", String::from_utf8_lossy(&bytes)));
    }
}

/// The driver-level contract: quarantined lines are counted and sampled,
/// the rest of the stream still applies, and the source's transient
/// hiccups are retried — all visible in the final [`FeedStats`].
#[test]
fn driver_quarantines_and_keeps_going() {
    let nets: Vec<Network> =
        all_presets(0.05).into_iter().take(2).map(|p| Network::new(p.timetable)).collect();
    let svc = ShardedService::builder().build(nets);

    let good = |i: u32| {
        encode_csv(&WireEvent {
            time: Time::hm(6 + i, 0),
            shard: ShardId(i % 2),
            event: DelayEvent::Delay {
                train: TrainId(0),
                from_hop: 0,
                delay: Dur::minutes(5 + i),
                recovery: Recovery::None,
            },
        })
    };
    let lines = vec![
        "# recorded with two bad lines in the middle".to_string(),
        good(0),
        "6:61:00,0,delay,0,0,60,0".to_string(), // bad_time
        good(1),
        "07:00:00,0,delay,999999,0,60,0".to_string(), // unknown_train
        good(2),
        String::new(), // blank — skipped, not quarantined
        good(3),
    ];
    let total_lines = lines.len() as u64;

    // Every 3rd poll fails transiently; the driver's retry budget absorbs it.
    let mut src = FlakySource::new(RecordedFeed::new(lines, 2), 3);
    let mut driver = FeedDriver::new(&svc, FeedDriverConfig::replay());
    let stats = driver.run(&mut src).expect("transient errors are retried");

    assert_eq!(stats.lines, total_lines);
    assert_eq!(stats.events_decoded, 4);
    assert_eq!(stats.events_applied, 4, "good events apply despite quarantined neighbours");
    assert_eq!(stats.quarantine.total, 2);
    assert_eq!(stats.quarantine.count("bad_time"), 1);
    assert_eq!(stats.quarantine.count("unknown_train"), 1);
    assert!(stats.transient_errors > 0, "the flaky source really did hiccup");
    assert!(
        !stats.quarantine.samples.is_empty() && stats.quarantine.samples.len() <= 2,
        "samples are kept, bounded"
    );
    // Conservation: every line is decoded, quarantined, or a skipped
    // blank/comment — nothing vanishes.
    assert!(stats.events_decoded + stats.quarantine.total <= stats.lines);
    assert_eq!(
        stats.lines - stats.events_decoded - stats.quarantine.total,
        2, // the comment and the blank
    );
}

#[test]
fn driver_stops_on_permanent_source_failure() {
    struct Dead;
    impl best_connections::feed::FeedSource for Dead {
        fn poll(&mut self) -> Result<best_connections::feed::FeedPoll, SourceError> {
            Err(SourceError::permanent("socket gone"))
        }
    }
    let nets: Vec<Network> =
        all_presets(0.05).into_iter().take(2).map(|p| Network::new(p.timetable)).collect();
    let svc = ShardedService::builder().build(nets);
    let mut driver = FeedDriver::new(&svc, FeedDriverConfig::replay());
    let err = driver.run(&mut Dead).expect_err("permanent failures are fatal");
    assert!(err.to_string().contains("socket gone"));
}
